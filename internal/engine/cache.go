package engine

// This file is the engine-level result cache: a bounded, sharded LRU
// memoizing canonical Query → Result over one immutable backend. Prepared
// views never change after construction, so invalidation is creation-time
// only — build a new CachedEngine when you build a new view — and a cache
// hit is certified bit-for-bit identical to a fresh evaluation (the cache
// stores the evaluation's own result slices; see cache_test.go).
//
// The serving layer (internal/serve) keeps one CachedEngine per loaded
// dataset, which realizes the ROADMAP's "(dataset, canonical Query) →
// Result" map structurally: the dataset axis is the engine instance, the
// query axis is Query.CacheKey.

import (
	"context"
	"hash/maphash"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// CacheKey returns a canonical, collision-free string encoding of the query
// parameters that determine its Result, and reports whether the query is
// cacheable at all. Two queries share a key if and only if Rank (or
// RankBatch) is guaranteed to return bit-for-bit identical answers for
// them. Floats are encoded by their IEEE-754 bit patterns, so keys are
// exact: no two distinct α values ever alias.
//
// MetricPRF queries are not cacheable — their Omega field is an arbitrary
// Go function whose behavior has no canonical encoding — and neither is a
// query with no Metric. Everything else is.
func (q Query) CacheKey() (string, bool) {
	if q.Metric == 0 || q.Metric == MetricPRF || q.Omega != nil {
		return "", false
	}
	// Worst case: metric+output+alpha plus 17 bytes per grid/weight/term
	// float. One allocation for typical queries.
	buf := make([]byte, 0, 64+17*(len(q.Alphas)+len(q.Weights)+4*len(q.Terms)))
	buf = append(buf, 'm', byte('0'+q.Metric), 'o', byte('0'+q.Output))
	buf = appendF64(buf, 'a', q.Alpha)
	if q.Output == OutputTopK {
		// K only affects top-k answers; a ranking query ignores it.
		buf = append(buf, 'k')
		buf = strconv.AppendInt(buf, int64(q.K), 16)
	}
	switch q.Metric {
	case MetricPRFe:
		for _, a := range q.Alphas {
			buf = appendF64(buf, 'g', a)
		}
	case MetricPRFOmega:
		for _, w := range q.Weights {
			buf = appendF64(buf, 'w', w)
		}
	case MetricPTh:
		buf = append(buf, 'h')
		buf = strconv.AppendInt(buf, int64(q.H), 16)
	case MetricPRFeCombo:
		for _, t := range q.Terms {
			buf = appendF64(buf, 'u', real(t.U))
			buf = appendF64(buf, 'v', imag(t.U))
			buf = appendF64(buf, 'x', real(t.Alpha))
			buf = appendF64(buf, 'y', imag(t.Alpha))
		}
	}
	return string(buf), true
}

// appendF64 appends a tagged, bit-exact encoding of f.
func appendF64(buf []byte, tag byte, f float64) []byte {
	buf = append(buf, tag)
	return strconv.AppendUint(buf, math.Float64bits(f), 16)
}

// CacheStats is a point-in-time snapshot of a cache's counters. The JSON
// form is what the serving layer's /stats endpoint reports per dataset.
type CacheStats struct {
	// Hits and Misses count lookups; Hits/(Hits+Misses) is the hit rate.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached results; Capacity its bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// cacheShard is one lock domain of the cache: an intrusive-list LRU.
type cacheShard struct {
	mu  sync.Mutex
	m   map[string]*cacheEntry
	cap int
	// Doubly linked LRU ring anchored at root (root.next = most recent).
	root cacheEntry
}

type cacheEntry struct {
	key        string
	val        any
	prev, next *cacheEntry
}

// Cache is a bounded, sharded LRU from canonical keys to immutable values.
// It is safe for concurrent use; lookups on distinct shards never contend.
// Values are shared between the cache and every reader — they must never be
// mutated.
type Cache struct {
	shards []cacheShard
	seed   maphash.Seed
	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

// cacheShardCount is the fixed shard fan-out; a power of two so the hash
// maps onto shards without division.
const cacheShardCount = 16

// DefaultCacheCapacity is the entry bound NewCache applies when asked for a
// non-positive capacity.
const DefaultCacheCapacity = 1024

// NewCache builds a cache bounded to at least capacity entries (rounded up
// to a multiple of the shard count; non-positive capacities take
// DefaultCacheCapacity).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	perShard := (capacity + cacheShardCount - 1) / cacheShardCount
	c := &Cache{shards: make([]cacheShard, cacheShardCount), seed: maphash.MakeSeed()}
	for i := range c.shards {
		s := &c.shards[i]
		s.m = make(map[string]*cacheEntry)
		s.cap = perShard
		s.root.prev = &s.root
		s.root.next = &s.root
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)&(cacheShardCount-1)]
}

// Get returns the cached value for key, if present, and counts the lookup.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	var val any
	if ok {
		e.unlink()
		e.linkFront(&s.root)
		// Copy under the lock: Put's refresh path writes e.val, so reading
		// it after unlocking would race.
		val = e.val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// Put stores val under key, evicting the least-recently-used entry of the
// key's shard when the shard is full. Storing an existing key refreshes its
// value and recency.
func (c *Cache) Put(key string, val any) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		e.val = val
		e.unlink()
		e.linkFront(&s.root)
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.cap {
		lru := s.root.prev
		lru.unlink()
		delete(s.m, lru.key)
		c.evicts.Add(1)
	}
	e := &cacheEntry{key: key, val: val}
	s.m[key] = e
	e.linkFront(&s.root)
	s.mu.Unlock()
}

func (e *cacheEntry) unlink() {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (e *cacheEntry) linkFront(root *cacheEntry) {
	e.prev = root
	e.next = root.next
	root.next.prev = e
	root.next = e
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	cap := 0
	for i := range c.shards {
		cap += c.shards[i].cap
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicts.Load(),
		Entries:   c.Len(),
		Capacity:  cap,
	}
}

// CachedEngine memoizes an Engine behind the canonical-query cache: the
// repeated-dashboard fast path. A hit returns the stored result — the very
// slices the first evaluation produced, so answers are bit-for-bit
// identical to the uncached engine — which makes the results shared values:
// callers must treat Result slices as read-only (the uncached Engine's
// results should be treated the same way; the cache just makes aliasing
// observable).
//
// Because prepared views are immutable, a CachedEngine never invalidates:
// its lifetime is the backing view's lifetime. It is safe for concurrent
// use. Concurrent identical misses may each evaluate once (no
// single-flight); all of them store and return correct results.
type CachedEngine struct {
	e     *Engine
	cache *Cache
}

// NewCached wraps an engine with a result cache bounded to capacity
// entries. Zero takes DefaultCacheCapacity; a negative capacity disables
// caching entirely (every call passes through) — the same sentinel meaning
// the serving layer's CacheCapacity option uses.
func NewCached(e *Engine, capacity int) *CachedEngine {
	if capacity < 0 {
		return &CachedEngine{e: e}
	}
	return &CachedEngine{e: e, cache: NewCache(capacity)}
}

// Engine returns the wrapped uncached engine.
func (ce *CachedEngine) Engine() *Engine { return ce.e }

// Stats snapshots the cache counters (all zero when caching is disabled).
func (ce *CachedEngine) Stats() CacheStats {
	if ce.cache == nil {
		return CacheStats{}
	}
	return ce.cache.Stats()
}

// Rank and RankBatch answers live in one keyspace; a one-byte prefix keeps
// them from colliding (a single-point Rank and a one-point batch of the
// same α have equal CacheKeys but different result shapes).
const (
	rankPrefix  = "R"
	batchPrefix = "B"
)

// Rank is Engine.Rank memoized. Errors (including context cancellation) are
// never cached; only successful results enter the cache.
func (ce *CachedEngine) Rank(ctx context.Context, q Query) (*Result, error) {
	if ce.cache == nil {
		return ce.e.Rank(ctx, q)
	}
	key, ok := q.CacheKey()
	if !ok {
		return ce.e.Rank(ctx, q)
	}
	key = rankPrefix + key
	if v, hit := ce.cache.Get(key); hit {
		return v.(*Result), nil
	}
	res, err := ce.e.Rank(ctx, q)
	if err != nil {
		return nil, err
	}
	ce.cache.Put(key, res)
	return res, nil
}

// RankBatch is Engine.RankBatch memoized under the same rules as Rank.
func (ce *CachedEngine) RankBatch(ctx context.Context, q Query) ([]Result, error) {
	if ce.cache == nil {
		return ce.e.RankBatch(ctx, q)
	}
	key, ok := q.CacheKey()
	if !ok {
		return ce.e.RankBatch(ctx, q)
	}
	key = batchPrefix + key
	if v, hit := ce.cache.Get(key); hit {
		return v.([]Result), nil
	}
	res, err := ce.e.RankBatch(ctx, q)
	if err != nil {
		return nil, err
	}
	ce.cache.Put(key, res)
	return res, nil
}
