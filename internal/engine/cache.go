package engine

// This file is the engine-level result cache: a bounded, sharded LRU
// memoizing canonical Query → Result over one immutable backend, plus the
// per-key single-flight latch (FlightGroup) that collapses a thundering
// herd of identical cold queries into one evaluation. Prepared views never
// change after construction, so invalidation is creation-time only — build
// a new CachedEngine when you build a new view — and a cache hit is
// certified bit-for-bit identical to a fresh evaluation (hits return deep
// copies of the stored result, so callers may mutate their answer without
// corrupting later hits; see cache_test.go).
//
// The serving layer (internal/serve) keeps one CachedEngine per loaded
// dataset, which realizes the ROADMAP's "(dataset, canonical Query) →
// Result" map structurally: the dataset axis is the engine instance, the
// query axis is Query.CacheKey. It layers its own encoded-byte cache and
// byte-level FlightGroup on top (internal/serve/bytecache.go).

import (
	"context"
	"errors"
	"hash/maphash"
	"math"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
)

// CacheKey returns a canonical, collision-free string encoding of the query
// parameters that determine its Result, and reports whether the query is
// cacheable at all. Two queries share a key if and only if Rank (or
// RankBatch) is guaranteed to return bit-for-bit identical answers for
// them. Floats are encoded by their IEEE-754 bit patterns, so keys are
// exact: no two distinct α values ever alias.
//
// MetricPRF queries are not cacheable — their Omega field is an arbitrary
// Go function whose behavior has no canonical encoding — and neither is a
// query with no Metric or a negative Parallelism (invalid; encoding only
// positive values keeps pre-knob keys stable, so without this guard a
// negative knob would alias the scalar key and a warm cache could answer a
// request that validation must reject). Everything else is.
func (q Query) CacheKey() (string, bool) {
	if q.Metric == 0 || q.Metric == MetricPRF || q.Omega != nil || q.Parallelism < 0 {
		return "", false
	}
	// Worst case: metric+output+alpha plus 17 bytes per grid/weight/term
	// float. One allocation for typical queries.
	buf := make([]byte, 0, 64+17*(len(q.Alphas)+len(q.Weights)+4*len(q.Terms)))
	buf = append(buf, 'm', byte('0'+q.Metric), 'o', byte('0'+q.Output))
	if q.Parallelism > 0 {
		// Sharded kernels are certified within 1e-12 of scalar, not equal
		// to it, so each knob setting caches separately; the zero value
		// adds nothing, keeping every pre-knob key (and cached entry)
		// byte-identical.
		buf = append(buf, 'p')
		buf = strconv.AppendInt(buf, int64(q.Parallelism), 16)
	}
	buf = appendF64(buf, 'a', q.Alpha)
	if q.Output == OutputTopK || q.Metric == MetricGlobalTopk {
		// K only affects top-k answers — except under Global-Topk, where K
		// is also the world top-k depth and shapes every output form.
		buf = append(buf, 'k')
		buf = strconv.AppendInt(buf, int64(q.K), 16)
	}
	switch q.Metric {
	case MetricPRFe:
		for _, a := range q.Alphas {
			buf = appendF64(buf, 'g', a)
		}
	case MetricPRFOmega:
		for _, w := range q.Weights {
			buf = appendF64(buf, 'w', w)
		}
	case MetricPTh:
		buf = append(buf, 'h')
		buf = strconv.AppendInt(buf, int64(q.H), 16)
	case MetricPRFeCombo:
		for _, t := range q.Terms {
			buf = appendF64(buf, 'u', real(t.U))
			buf = appendF64(buf, 'v', imag(t.U))
			buf = appendF64(buf, 'x', real(t.Alpha))
			buf = appendF64(buf, 'y', imag(t.Alpha))
		}
	}
	return string(buf), true
}

// appendF64 appends a tagged, bit-exact encoding of f.
func appendF64(buf []byte, tag byte, f float64) []byte {
	buf = append(buf, tag)
	return strconv.AppendUint(buf, math.Float64bits(f), 16)
}

// CacheStats is a point-in-time snapshot of a cache's counters. The JSON
// form is what the serving layer's /stats endpoint reports per dataset.
type CacheStats struct {
	// Hits and Misses count lookups; Hits/(Hits+Misses) is the hit rate.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached results; Capacity its bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// cacheShard is one lock domain of the cache: an intrusive-list LRU.
type cacheShard struct {
	mu  sync.Mutex
	m   map[string]*cacheEntry
	cap int
	// Doubly linked LRU ring anchored at root (root.next = most recent).
	root cacheEntry
}

type cacheEntry struct {
	key        string
	val        any
	prev, next *cacheEntry
}

// Cache is a bounded, sharded LRU from canonical keys to immutable values.
// It is safe for concurrent use; lookups on distinct shards never contend.
// Values are shared between the cache and every reader — they must never be
// mutated.
type Cache struct {
	shards []cacheShard
	seed   maphash.Seed
	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

// cacheShardCount is the fixed shard fan-out; a power of two so the hash
// maps onto shards without division.
const cacheShardCount = 16

// DefaultCacheCapacity is the entry bound NewCache applies when asked for a
// non-positive capacity.
const DefaultCacheCapacity = 1024

// NewCache builds a cache bounded to at least capacity entries (rounded up
// to a multiple of the shard count; non-positive capacities take
// DefaultCacheCapacity).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	perShard := (capacity + cacheShardCount - 1) / cacheShardCount
	c := &Cache{shards: make([]cacheShard, cacheShardCount), seed: maphash.MakeSeed()}
	for i := range c.shards {
		s := &c.shards[i]
		s.m = make(map[string]*cacheEntry)
		s.cap = perShard
		s.root.prev = &s.root
		s.root.next = &s.root
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)&(cacheShardCount-1)]
}

// peek returns the cached value for key without counting the lookup or
// refreshing its recency — the double-check a single-flight leader runs
// after winning the latch (the caller's Get already counted the lookup).
func (c *Cache) peek(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	var val any
	if ok {
		val = e.val
	}
	s.mu.Unlock()
	return val, ok
}

// Get returns the cached value for key, if present, and counts the lookup.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	var val any
	if ok {
		e.unlink()
		e.linkFront(&s.root)
		// Copy under the lock: Put's refresh path writes e.val, so reading
		// it after unlocking would race.
		val = e.val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// Put stores val under key, evicting the least-recently-used entry of the
// key's shard when the shard is full. Storing an existing key refreshes its
// value and recency.
func (c *Cache) Put(key string, val any) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		e.val = val
		e.unlink()
		e.linkFront(&s.root)
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.cap {
		lru := s.root.prev
		lru.unlink()
		delete(s.m, lru.key)
		c.evicts.Add(1)
	}
	e := &cacheEntry{key: key, val: val}
	s.m[key] = e
	e.linkFront(&s.root)
	s.mu.Unlock()
}

func (e *cacheEntry) unlink() {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (e *cacheEntry) linkFront(root *cacheEntry) {
	e.prev = root
	e.next = root.next
	root.next.prev = e
	root.next = e
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	cap := 0
	for i := range c.shards {
		cap += c.shards[i].cap
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicts.Load(),
		Entries:   c.Len(),
		Capacity:  cap,
	}
}

// FlightGroup is a per-key single-flight latch: the first caller for a key
// becomes the leader and runs fn; callers that arrive while that flight is
// in progress wait and share the leader's result instead of re-running fn.
// The thundering-dashboard regime — N identical cold queries landing at
// once — thus pays one evaluation instead of N.
//
// Error semantics: a leader's deterministic error (validation) is shared
// with every waiter, but a leader's context error (cancellation, deadline)
// is the leader's own story — waiters whose contexts are still live retry
// the flight (becoming the next leader) rather than inheriting it. A waiter
// whose own context expires gives up with its own ctx.Err() immediately.
// The zero FlightGroup is ready to use.
type FlightGroup struct {
	mu sync.Mutex
	m  map[string]*flight

	flights atomic.Int64 // leader executions of fn
	shared  atomic.Int64 // calls answered by waiting on another's flight
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Do returns the result of running fn under the key's latch, deduplicating
// concurrent callers. fn runs exactly once per flight, under the leader's
// context (fn should close over it).
func (g *FlightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (any, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flight)
		}
		if f, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					g.shared.Add(1)
					return f.val, nil
				}
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					continue // the leader was cut off, not the work itself
				}
				g.shared.Add(1)
				return nil, f.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		g.m[key] = f
		g.mu.Unlock()
		g.flights.Add(1)
		f.val, f.err = fn()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
		return f.val, f.err
	}
}

// Stats reports leader executions and deduplicated (shared) calls.
func (g *FlightGroup) Stats() (flights, shared int64) {
	return g.flights.Load(), g.shared.Load()
}

// cloneResult deep-copies a Result so cache hits never alias the stored
// slices: a caller mutating its answer must not corrupt later hits.
func cloneResult(r *Result) *Result {
	out := *r
	out.Values = slices.Clone(r.Values)
	out.Complex = slices.Clone(r.Complex)
	out.Ranking = slices.Clone(r.Ranking)
	return &out
}

func cloneResults(rs []Result) []Result {
	out := make([]Result, len(rs))
	for i := range rs {
		out[i] = *cloneResult(&rs[i])
	}
	return out
}

// CachedEngine memoizes an Engine behind the canonical-query cache: the
// repeated-dashboard fast path. A hit returns a deep copy of the stored
// result — bit-for-bit identical to the uncached engine's answer, and safe
// to mutate (the copy isolates the cache from its callers; cache_test.go
// certifies both properties).
//
// Concurrent identical misses are collapsed by a per-key FlightGroup: one
// caller evaluates, everyone else waits and shares the stored result, so a
// cold storm of N equal queries costs one evaluation.
//
// Because prepared views are immutable, a CachedEngine never invalidates:
// its lifetime is the backing view's lifetime. It is safe for concurrent
// use.
type CachedEngine struct {
	e      *Engine
	cache  *Cache
	flight FlightGroup
}

// NewCached wraps an engine with a result cache bounded to capacity
// entries. Zero takes DefaultCacheCapacity; a negative capacity disables
// caching entirely (every call passes through) — the same sentinel meaning
// the serving layer's CacheCapacity option uses.
func NewCached(e *Engine, capacity int) *CachedEngine {
	if capacity < 0 {
		return &CachedEngine{e: e}
	}
	return &CachedEngine{e: e, cache: NewCache(capacity)}
}

// Engine returns the wrapped uncached engine.
func (ce *CachedEngine) Engine() *Engine { return ce.e }

// Stats snapshots the cache counters (all zero when caching is disabled).
func (ce *CachedEngine) Stats() CacheStats {
	if ce.cache == nil {
		return CacheStats{}
	}
	return ce.cache.Stats()
}

// Rank and RankBatch answers live in one keyspace; a one-byte prefix keeps
// them from colliding (a single-point Rank and a one-point batch of the
// same α have equal CacheKeys but different result shapes).
const (
	rankPrefix  = "R"
	batchPrefix = "B"
)

// Rank is Engine.Rank memoized. Errors (including context cancellation) are
// never cached; only successful results enter the cache. Identical
// concurrent misses evaluate once (single-flight).
func (ce *CachedEngine) Rank(ctx context.Context, q Query) (*Result, error) {
	if ce.cache == nil {
		return ce.e.Rank(ctx, q)
	}
	key, ok := q.CacheKey()
	if !ok {
		return ce.e.Rank(ctx, q)
	}
	key = rankPrefix + key
	if v, hit := ce.cache.Get(key); hit {
		return cloneResult(v.(*Result)), nil
	}
	v, err := ce.flight.Do(ctx, key, func() (any, error) {
		if v, ok := ce.cache.peek(key); ok {
			return v, nil // filled between our miss and winning the latch
		}
		res, err := ce.e.Rank(ctx, q)
		if err != nil {
			return nil, err
		}
		ce.cache.Put(key, res)
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return cloneResult(v.(*Result)), nil
}

// RankBatch is Engine.RankBatch memoized under the same rules as Rank.
func (ce *CachedEngine) RankBatch(ctx context.Context, q Query) ([]Result, error) {
	if ce.cache == nil {
		return ce.e.RankBatch(ctx, q)
	}
	key, ok := q.CacheKey()
	if !ok {
		return ce.e.RankBatch(ctx, q)
	}
	key = batchPrefix + key
	if v, hit := ce.cache.Get(key); hit {
		return cloneResults(v.([]Result)), nil
	}
	v, err := ce.flight.Do(ctx, key, func() (any, error) {
		if v, ok := ce.cache.peek(key); ok {
			return v, nil
		}
		res, err := ce.e.RankBatch(ctx, q)
		if err != nil {
			return nil, err
		}
		ce.cache.Put(key, res)
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return cloneResults(v.([]Result)), nil
}

// FlightStats reports the single-flight counters: leader evaluations and
// calls that were answered by waiting on another caller's flight.
func (ce *CachedEngine) FlightStats() (flights, shared int64) {
	return ce.flight.Stats()
}
