package engine

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

// Tests for the Query.Parallelism knob: dispatch onto the sharded kernels,
// agreement with the scalar path, validation, and cache-key separation.

func parTol(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-12*scale
}

func TestParallelismKnobAgreesWithScalar(t *testing.T) {
	d := datagen.IIPLike(400, 9)
	e := New(core.Prepare(d))
	ctx := context.Background()
	for _, par := range []int{1, 3, 8} {
		// PRFe values.
		scalar, err := e.Rank(ctx, Query{Metric: MetricPRFe, Alpha: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := e.Rank(ctx, Query{Metric: MetricPRFe, Alpha: 0.4, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		for i := range scalar.Complex {
			if !parTol(real(sharded.Complex[i]), real(scalar.Complex[i])) {
				t.Fatalf("par=%d: PRFe values diverge at %d", par, i)
			}
		}
		// PRFe ranking: same order despite the log-domain lanes rewrite.
		sr, err := e.Rank(ctx, Query{Metric: MetricPRFe, Alpha: 0.4, Output: OutputRanking})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := e.Rank(ctx, Query{Metric: MetricPRFe, Alpha: 0.4, Output: OutputRanking, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		for i := range sr.Ranking {
			if sr.Ranking[i] != pr.Ranking[i] {
				t.Fatalf("par=%d: PRFe ranking diverges at %d", par, i)
			}
		}
		// PT(h) and ERank real-valued paths.
		for _, q := range []Query{
			{Metric: MetricPTh, H: 12},
			{Metric: MetricERank},
			{Metric: MetricPRFOmega, Weights: []float64{1, 0.5, 0.25, 0.125}},
		} {
			s, err := e.Rank(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			q.Parallelism = par
			p, err := e.Rank(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			for i := range s.Values {
				if !parTol(p.Values[i], s.Values[i]) {
					t.Fatalf("par=%d %v: values diverge at %d: %v vs %v", par, q.Metric, i, p.Values[i], s.Values[i])
				}
			}
		}
	}
}

func TestParallelismKnobBatch(t *testing.T) {
	d := datagen.IIPLike(200, 5)
	e := New(core.Prepare(d))
	ctx := context.Background()
	alphas := []float64{0.9, 0.2, 0.6, 0.4} // non-monotone: parallel fan-out path
	base, err := e.RankBatch(ctx, Query{Metric: MetricPRFe, Alphas: alphas, Output: OutputRanking})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := e.RankBatch(ctx, Query{Metric: MetricPRFe, Alphas: alphas, Output: OutputRanking, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for a := range base {
		for i := range base[a].Ranking {
			if base[a].Ranking[i] != capped[a].Ranking[i] {
				t.Fatalf("capped batch diverges at grid %d position %d", a, i)
			}
		}
	}
}

func TestParallelismValidation(t *testing.T) {
	e := New(core.Prepare(datagen.IIPLike(16, 1)))
	ctx := context.Background()
	if _, err := e.Rank(ctx, Query{Metric: MetricPRFe, Alpha: 0.5, Parallelism: -2}); err == nil {
		t.Fatal("negative Parallelism accepted by Rank")
	}
	if _, err := e.RankBatch(ctx, Query{Metric: MetricPRFe, Alphas: []float64{0.5, 0.6}, Parallelism: -1}); err == nil {
		t.Fatal("negative Parallelism accepted by RankBatch")
	}
}

func TestCacheKeyParallelism(t *testing.T) {
	base := Query{Metric: MetricPRFe, Alpha: 0.5}
	k0, ok := base.CacheKey()
	if !ok {
		t.Fatal("base query not cacheable")
	}
	withPar := base
	withPar.Parallelism = 4
	k4, ok := withPar.CacheKey()
	if !ok {
		t.Fatal("parallel query not cacheable")
	}
	if k0 == k4 {
		t.Fatal("Parallelism not encoded in cache key: sharded (≤1e-12) results would alias scalar bit-exact entries")
	}
	// The zero value must not perturb pre-knob keys.
	again, _ := Query{Metric: MetricPRFe, Alpha: 0.5, Parallelism: 0}.CacheKey()
	if again != k0 {
		t.Fatal("zero Parallelism changed the canonical key")
	}
	// A negative knob is invalid and must not be cacheable: only positive
	// values are encoded, so a negative one would alias k0 and a warm cache
	// could answer a query that Rank is required to reject.
	bad := base
	bad.Parallelism = -2
	if k, ok := bad.CacheKey(); ok {
		t.Fatalf("negative Parallelism cacheable (key %q): warm caches would bypass validation", k)
	}
}
