// Package prf is a from-scratch Go implementation of
//
//	Jian Li, Barna Saha, Amol Deshpande.
//	"A Unified Approach to Ranking in Probabilistic Databases." VLDB 2009.
//
// It provides the paper's parameterized ranking functions — PRF, PRFω(h) and
// PRFe(α) — together with every substrate they rest on: the possible-worlds
// model for tuple-independent relations, probabilistic and/xor trees for
// correlated data, junction trees over Markov networks for arbitrary
// correlations, the generating-function ranking algorithms, the DFT-based
// approximation of weight functions by sums of complex exponentials, the
// parameter-learning procedures, and all prior ranking semantics the paper
// compares against (U-Top, U-Rank, PT(h)/Global-top-k, expected ranks,
// expected score, k-selection, consensus top-k).
//
// # Quick start
//
//	d, _ := prf.NewDataset(
//	    []float64{120, 130, 80},   // scores
//	    []float64{0.4, 0.7, 0.3},  // existence probabilities
//	)
//	top := prf.RankPRFe(d, 0.95).TopK(2)
//
// The package is a thin, documented facade over the internal packages; see
// DESIGN.md for the architecture and EXPERIMENTS.md for the reproduction of
// the paper's evaluation.
package prf

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/andxor"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dftapprox"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/learn"
	"repro/internal/pdb"
	"repro/internal/rankdist"
	"repro/internal/serve"
	"repro/internal/store"
)

// Base model types (Section 3.1).
type (
	// Tuple is an uncertain tuple: a ranking score plus an existence
	// probability.
	Tuple = pdb.Tuple
	// TupleID identifies a tuple within a dataset (dense 0..n-1).
	TupleID = pdb.TupleID
	// Dataset is a tuple-independent probabilistic relation.
	Dataset = pdb.Dataset
	// World is one possible world: present tuples in ranked order plus the
	// world's probability.
	World = pdb.World
	// Ranking is an ordered list of tuple IDs, best first.
	Ranking = pdb.Ranking
	// RankDistributionMatrix holds Pr(r(t)=j) for every tuple and rank.
	RankDistributionMatrix = pdb.RankDistribution
	// WeightFunc is the paper's ω(t, i) weight function.
	WeightFunc = core.WeightFunc
	// ExpTerm is one u·αⁱ term of an exponential-sum weight function.
	ExpTerm = core.ExpTerm
)

// NewDataset builds a dataset from parallel score/probability slices,
// assigning IDs 0..n-1 in input order.
func NewDataset(scores, probs []float64) (*Dataset, error) {
	return pdb.NewDataset(scores, probs)
}

// FromTuples builds a dataset from tuples, reassigning dense IDs.
func FromTuples(ts []Tuple) (*Dataset, error) { return pdb.FromTuples(ts) }

// EnumerateWorlds lists all possible worlds of a small tuple-independent
// dataset (≤ pdb.MaxEnumerate tuples) — the brute-force semantics reference.
func EnumerateWorlds(d *Dataset) ([]World, error) { return pdb.EnumerateWorlds(d) }

// SampleWorld draws one possible world of an independent dataset.
func SampleWorld(d *Dataset, rng *rand.Rand) World { return pdb.SampleWorld(d, rng) }

// ---------------------------------------------------------------------------
// The unified Ranker engine: one backend-agnostic query API over all four
// correlation models.
// ---------------------------------------------------------------------------

type (
	// Ranker is the backend capability interface of the unified engine,
	// satisfied by all four prepared views: Prepared (tuple-independent),
	// PreparedTree (and/xor correlations), PreparedNetwork (arbitrary
	// correlations) and PreparedChain (Markov chains). Its Query* methods
	// are context-aware and error-returning, and each backend dispatches to
	// its fastest kernel.
	Ranker = engine.Ranker
	// Engine executes declarative ranking queries (Query) against any
	// Ranker: Engine.Rank for single evaluations, Engine.RankBatch for α
	// grids. Answers are bit-for-bit identical to the legacy flat
	// functions; the engine adds dispatch, validation and cancellation,
	// never arithmetic. Safe for concurrent use.
	Engine = engine.Engine
	// Query declares one ranking computation: a Metric, its parameters and
	// an Output form.
	Query = engine.Query
	// Result is the answer to one Query.
	Result = engine.Result
	// Metric selects the ranking function of a Query.
	Metric = engine.Metric
	// Output selects the answer form of a Query.
	Output = engine.Output
)

// The PRF family as query metrics.
const (
	MetricPRFe      = engine.MetricPRFe      // PRFe(α)
	MetricPRFOmega  = engine.MetricPRFOmega  // PRFω(h) weight vector
	MetricPTh       = engine.MetricPTh       // PT(h) / Global-top-k
	MetricPRF       = engine.MetricPRF       // arbitrary ω
	MetricERank     = engine.MetricERank     // expected rank (lower is better)
	MetricPRFeCombo = engine.MetricPRFeCombo // Σ u_l·PRFe(α_l)
)

// Query output forms.
const (
	OutputValues  = engine.OutputValues  // per-tuple values by TupleID
	OutputRanking = engine.OutputRanking // full best-first ranking
	OutputTopK    = engine.OutputTopK    // first K of the ranking
)

// NewEngine wraps any prepared backend in the unified query engine.
func NewEngine(r Ranker) *Engine { return engine.New(r) }

// EngineFor prepares a tuple-independent dataset and wraps it: the one-call
// path from data to unified queries.
func EngineFor(d *Dataset) *Engine { return engine.New(core.Prepare(d)) }

// EngineForTree prepares an and/xor tree and wraps it.
func EngineForTree(t *Tree) *Engine { return engine.New(andxor.PrepareTree(t)) }

// EngineForNetwork builds and calibrates the junction tree of a Markov
// network and wraps the prepared view.
func EngineForNetwork(net *MarkovNetwork) (*Engine, error) {
	pn, err := junction.PrepareNetwork(net)
	if err != nil {
		return nil, err
	}
	return engine.New(pn), nil
}

// EngineForChain prepares a Markov chain and wraps it.
func EngineForChain(c *MarkovChain) *Engine { return engine.New(junction.PrepareChain(c)) }

// LearnAlphaRanker fits PRFe's α from a user-ranked sample held in ANY
// backend — the one generic search behind LearnAlpha and LearnAlphaTree,
// now also covering junction networks and Markov chains. The context aborts
// long searches; malformed user rankings surface as errors.
func LearnAlphaRanker(ctx context.Context, r Ranker, user Ranking, k, iters int) (AlphaResult, error) {
	return learn.LearnAlphaRanker(ctx, r, user, k, iters)
}

// ---------------------------------------------------------------------------
// Engine-level result caching and the HTTP serving layer.
// ---------------------------------------------------------------------------

type (
	// CachedEngine memoizes an Engine behind a bounded, sharded LRU keyed
	// by the canonical query encoding (Query.CacheKey). Prepared views are
	// immutable, so the cache never invalidates, and a hit is bit-for-bit
	// the first evaluation's result — treat Result slices as read-only.
	// Safe for concurrent use.
	CachedEngine = engine.CachedEngine
	// CacheStats is a snapshot of a result cache's hit/miss/eviction
	// counters (the serving layer reports it per dataset on /stats).
	CacheStats = engine.CacheStats
	// RankServer is the HTTP front end over the unified engine: named
	// immutable datasets, declarative JSON queries routed to each dataset's
	// backend, per-request deadlines, per-dataset result caches, typed
	// error responses. It implements http.Handler.
	RankServer = serve.Server
	// ServeOptions configures a RankServer: default and maximum per-request
	// timeouts, per-dataset cache capacity, request size bound, and — with
	// Store and AdminToken set — the authenticated dataset lifecycle
	// endpoints (POST/DELETE /datasets/{name}, GET /datasets/{name}/info).
	ServeOptions = serve.Options
	// DatasetStore is a directory of immutable binary dataset segments:
	// score-sorted, checksummed, written atomically, re-imports bump a
	// generation counter while open readers keep their snapshot.
	// Independent datasets open lazily and answer cold top-k PRFe queries
	// from a certified score-order prefix (o(n) bytes for small k).
	DatasetStore = store.Store
	// DatasetInfo is the stored metadata of one segment: name, kind, tuple
	// count, generation, size.
	DatasetInfo = store.Info
)

// DefaultCacheCapacity is the result-cache entry bound used when a
// non-positive capacity is requested.
const DefaultCacheCapacity = engine.DefaultCacheCapacity

// NewCachedEngine wraps an engine with a result cache bounded to capacity
// entries (zero takes DefaultCacheCapacity, negative disables caching) —
// the repeated-dashboard fast path.
func NewCachedEngine(e *Engine, capacity int) *CachedEngine {
	return engine.NewCached(e, capacity)
}

// NewRankServer builds an empty serving front end. Register prepared
// datasets with AddDataset, then serve it with Serve (or mount it on any
// http.Server — it is an http.Handler).
func NewRankServer(opts ServeOptions) *RankServer { return serve.New(opts) }

// LoadDataset loads one dataset file into a prepared engine, ready for
// AddDataset. Kinds: "ind" (CSV score,probability), "xrel" (CSV
// score,probability,group — rows sharing a group are mutually exclusive
// alternatives), "tree" (JSON and/xor spec), "chain" (JSON Markov-chain
// spec).
func LoadDataset(kind, path string) (*Engine, error) { return serve.LoadFile(kind, path) }

// OpenStore opens (creating if needed) a segment store rooted at dir. Use
// Store.Import to persist datasets, Store.OpenEngine to open one for
// querying, and ServeOptions.Store to serve a whole directory with the
// dataset lifecycle endpoints enabled. cmd/prfstore is the offline CLI over
// the same store.
func OpenStore(dir string) (*DatasetStore, error) { return store.Open(dir) }

// Serve runs a RankServer on addr until ctx is canceled, then shuts down
// gracefully (in-flight requests get ten seconds to finish). A clean
// shutdown returns nil, not http.ErrServerClosed.
func Serve(ctx context.Context, addr string, s *RankServer) error {
	srv := &http.Server{Addr: addr, Handler: s, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		//lint:allow ctxflow the graceful-shutdown timeout must outlive the already-cancelled parent ctx
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// ---------------------------------------------------------------------------
// Prepared evaluation (the repeated-query fast path).
// ---------------------------------------------------------------------------

// Prepared is an immutable, score-sorted view of a dataset in
// struct-of-arrays layout. Build it once with Prepare, then call its kernel
// methods (PRF, PRFOmega, PTh, PRFe, PRFeLog, PRFeCombo,
// RankDistributionTrunc, …) and parallel batch methods (RankPRFeBatch,
// PRFeLogBatch, TopKPRFeBatch, PRFeCurve, PRFeComboParallel) — none of them
// re-clones or re-sorts, so an α-spectrum sweep or a multi-term PRFe
// combination pays the O(n log n) sort exactly once. Safe for concurrent
// use.
type Prepared = core.Prepared

// Prepare builds the sorted struct-of-arrays view of a dataset. The dataset
// is never mutated; the one-shot package functions below are thin
// prepare-then-call wrappers over the same kernels.
func Prepare(d *Dataset) *Prepared { return core.Prepare(d) }

// ParallelTopK answers many independent top-k queries (one value vector per
// query, each indexed by TupleID) across GOMAXPROCS goroutines.
func ParallelTopK(valueBatch [][]float64, k int) []Ranking {
	return core.ParallelTopK(valueBatch, k)
}

// Sweep is the kinetic spectrum engine (Theorem 4): an event-driven sorted
// list that maintains the PRFe(α) ranking incrementally as α moves upward
// through (0, 1], paying one sort up front and O(log n) per adjacent-pair
// crossing instead of a re-sort per queried α. Build one with NewSweep and
// query it at non-decreasing α values. Unlike Prepared, a Sweep carries
// mutable cursor state and must not be shared across goroutines.
type Sweep = core.Sweep

// NewSweep builds a kinetic sweep over the prepared view positioned at
// alpha ∈ (0, 1]. The batch APIs (RankPRFeBatch, TopKPRFeBatch) construct
// sweeps automatically for monotone α grids; reach for NewSweep directly
// when advancing α incrementally yourself.
func NewSweep(v *Prepared, alpha float64) *Sweep { return v.NewSweep(alpha) }

// URankPrepared is URank on a prepared view (no re-sort, no clone).
func URankPrepared(v *Prepared, k int) (Ranking, error) { return baselines.URankPrepared(v, k) }

// ERankPrepared is ERank on a prepared view (no re-sort, no clone).
func ERankPrepared(v *Prepared) []float64 { return baselines.ERankPrepared(v) }

// UTopKPrepared is UTopK on a prepared view (no re-sort, no clone).
func UTopKPrepared(v *Prepared, k int) (Ranking, float64, error) {
	return baselines.UTopKPrepared(v, k)
}

// KSelectionPrepared is KSelection on a prepared view (no re-sort, no clone).
func KSelectionPrepared(v *Prepared, k int) (Ranking, float64, error) {
	return baselines.KSelectionPrepared(v, k)
}

// ---------------------------------------------------------------------------
// Ranking functions on tuple-independent datasets (Sections 4.1 and 4.3).
// ---------------------------------------------------------------------------

// RankDistribution computes Pr(r(t)=j) for all tuples and ranks with the
// generating-function Algorithm 1 (O(n²)).
func RankDistribution(d *Dataset) *RankDistributionMatrix { return core.RankDistribution(d) }

// RankDistributionTrunc computes Pr(r(t)=j) for ranks j ≤ h only (O(n·h)).
func RankDistributionTrunc(d *Dataset, h int) *RankDistributionMatrix {
	return core.RankDistributionTrunc(d, h)
}

// PRF evaluates Υω(t) for an arbitrary weight function in O(n²) time and
// O(n) space. Results are indexed by TupleID.
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineFor(d).Rank with MetricPRF, which adds validation, cancellation and
// backend portability.
func PRF(d *Dataset, omega WeightFunc) []float64 { return core.PRF(d, omega) }

// PRFOmega evaluates the PRFω(h) family: w[j] is the weight of rank j+1 and
// ranks beyond len(w) weigh zero. O(n·h + n log n).
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineFor(d).Rank with MetricPRFOmega.
func PRFOmega(d *Dataset, w []float64) []float64 { return core.PRFOmega(d, w) }

// PTh evaluates Pr(r(t) ≤ h) — the probabilistic-threshold / Global-top-k
// ranking function — for every tuple in O(n·h).
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineFor(d).Rank with MetricPTh.
func PTh(d *Dataset, h int) []float64 { return core.PTh(d, h) }

// PRFe evaluates Υ_α(t) for every tuple with one linear scan (Equation 3).
// See PRFeLog for the numerically robust variant at scale.
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineFor(d).Rank with MetricPRFe.
func PRFe(d *Dataset, alpha complex128) []complex128 { return core.PRFe(d, alpha) }

// PRFeLog evaluates log|Υ_α(t)|, the underflow-free form used for ranking.
func PRFeLog(d *Dataset, alpha complex128) []float64 { return core.PRFeLog(d, alpha) }

// RankPRFe returns the full PRFe(α) ranking for real α ∈ [0, 1].
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineFor(d).Rank with MetricPRFe and OutputRanking.
func RankPRFe(d *Dataset, alpha float64) Ranking { return core.RankPRFe(d, alpha) }

// PRFeCombo evaluates a linear combination Σ u_l·Υ_{α_l}(t) of PRFe
// functions — the Section 5.1 approximate-PRFω backend. O(n·L).
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineFor(d).Rank with MetricPRFeCombo.
func PRFeCombo(d *Dataset, terms []ExpTerm) []complex128 { return core.PRFeCombo(d, terms) }

// TopK ranks all tuples by non-increasing value and returns the best k IDs.
func TopK(values []float64, k int) Ranking { return core.TopK(values, k) }

// RankByValue returns the full ranking by non-increasing value (values are
// indexed by TupleID; ties break by ID).
func RankByValue(values []float64) Ranking { return pdb.RankByValue(values) }

// RealParts extracts real components from complex ranking values.
func RealParts(vals []complex128) []float64 { return core.RealParts(vals) }

// AbsParts extracts magnitudes from complex ranking values.
func AbsParts(vals []complex128) []float64 { return core.AbsParts(vals) }

// CrossingPoint finds the unique α at which the tuples at sorted positions
// i < j swap PRFe order, if any (Theorem 4).
func CrossingPoint(d *Dataset, i, j int) (float64, bool) { return core.CrossingPoint(d, i, j) }

// PRFeCurve evaluates Υ_α(t) for every tuple over a grid of α values
// (Figure 6 / Example 7).
func PRFeCurve(d *Dataset, alphas []float64) [][]float64 { return core.PRFeCurve(d, alphas) }

// ---------------------------------------------------------------------------
// Probabilistic and/xor trees (Sections 3.1, 4.2, 4.3, 4.4).
// ---------------------------------------------------------------------------

type (
	// Tree is a validated probabilistic and/xor tree.
	Tree = andxor.Tree
	// TreeNode is a node under construction (leaf, ∧ or ∨).
	TreeNode = andxor.Node
	// Alternative is one (score, probability) choice of an x-tuple or an
	// uncertain-score tuple.
	Alternative = andxor.Alternative
)

// NewLeaf returns a leaf node with the given score.
func NewLeaf(score float64) *TreeNode { return andxor.NewLeaf(score) }

// NewKeyedLeaf returns a leaf carrying a possible-worlds key (leaves sharing
// a key must be mutually exclusive; enforced at NewTree).
func NewKeyedLeaf(key string, score float64) *TreeNode { return andxor.NewKeyedLeaf(key, score) }

// NewAnd returns a ∧ (co-existence) node.
func NewAnd(children ...*TreeNode) *TreeNode { return andxor.NewAnd(children...) }

// NewXor returns a ∨ (mutual-exclusion) node with per-child probabilities.
func NewXor(probs []float64, children ...*TreeNode) *TreeNode {
	return andxor.NewXor(probs, children...)
}

// NewTree validates the node structure (probability and key constraints)
// and returns the finished tree.
func NewTree(root *TreeNode) (*Tree, error) { return andxor.New(root) }

// XTuples builds the classic x-tuple model: groups of mutually exclusive
// alternatives under a ∧ root.
func XTuples(groups [][]Alternative) (*Tree, error) { return andxor.XTuples(groups) }

// IndependentTree wraps an independent dataset as a height-2 and/xor tree.
func IndependentTree(d *Dataset) (*Tree, error) { return andxor.Independent(d) }

// TreeFromWorlds encodes an explicit set of possible worlds as a tree
// (Figure 2 of the paper).
func TreeFromWorlds(worlds [][]Alternative, probs []float64, keys [][]string) (*Tree, [][]TupleID, error) {
	return andxor.FromWorlds(worlds, probs, keys)
}

// PreparedTree is an immutable prepared view of an and/xor tree — the
// correlated-data leg of the prepared-evaluation engine. Build it once with
// PrepareTree, then call its kernel methods (PRFe, PRFeCombo, RankPRFe,
// ERank) and parallel batch methods (PRFeBatch, RankPRFeBatch,
// TopKPRFeBatch): the ranked leaf order and the incremental Algorithm 3
// evaluation state are paid once and reused, so α-spectrum sweeps and
// multi-term combinations on trees stop re-sorting and re-allocating per
// query. Safe for concurrent use.
type PreparedTree = andxor.PreparedTree

// PrepareTree builds the prepared view of an and/xor tree. The tree is never
// mutated; the one-shot tree functions below are thin prepare-then-call
// wrappers over the same kernels.
func PrepareTree(t *Tree) *PreparedTree { return andxor.PrepareTree(t) }

// TreeRankDistribution computes Pr(r(t)=j) on a correlated dataset with the
// bivariate generating-function Algorithm 2.
func TreeRankDistribution(t *Tree) *RankDistributionMatrix { return andxor.RankDistribution(t) }

// TreeRankDistributionTrunc truncates the computation to ranks ≤ h.
func TreeRankDistributionTrunc(t *Tree, h int) *RankDistributionMatrix {
	return andxor.RankDistributionTrunc(t, h)
}

// TreePRF evaluates Υω on a correlated dataset.
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineForTree(t).Rank with MetricPRF — the same Query then runs on any
// backend.
func TreePRF(t *Tree, omega func(tu Tuple, rank int) float64) []float64 {
	return andxor.PRF(t, omega)
}

// TreePRFOmega evaluates PRFω(h) on a correlated dataset.
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineForTree(t).Rank with MetricPRFOmega.
func TreePRFOmega(t *Tree, w []float64) []float64 { return andxor.PRFOmega(t, w) }

// TreePTh evaluates PT(h) on a correlated dataset.
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineForTree(t).Rank with MetricPTh.
func TreePTh(t *Tree, h int) []float64 { return andxor.PTh(t, h) }

// TreePRFe evaluates Υ_α on a correlated dataset with the incremental
// Algorithm 3 (O(Σ depth(tᵢ) + n log n)).
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineForTree(t).Rank with MetricPRFe.
func TreePRFe(t *Tree, alpha complex128) []complex128 { return andxor.PRFeValues(t, alpha) }

// TreeRankPRFe returns the PRFe(α) ranking of the tree's tuples.
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineForTree(t).Rank with MetricPRFe and OutputRanking.
func TreeRankPRFe(t *Tree, alpha float64) Ranking { return andxor.RankPRFe(t, alpha) }

// TreePRFeCombo evaluates a linear combination of PRFe functions on a tree.
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineForTree(t).Rank with MetricPRFeCombo.
func TreePRFeCombo(t *Tree, us, alphas []complex128) []complex128 {
	return andxor.PRFeCombo(t, us, alphas)
}

// TreeExpectedRanks returns E[r(t)] on a correlated dataset.
func TreeExpectedRanks(t *Tree) []float64 { return andxor.ExpectedRanks(t) }

// TreeSizeDistribution returns Pr(|pw| = i) (Example 2 of the paper).
func TreeSizeDistribution(t *Tree) []float64 { return andxor.SizeDistribution(t) }

// PRFUncertainScores evaluates Υω per original tuple when scores carry
// discrete uncertainty (Section 4.4): alternatives become xor groups and
// per-alternative values are summed. Uses the specialized O(N²) sweep over
// the N alternatives (the paper's stated bound); the generic tree algorithm
// remains available through the Tree API.
func PRFUncertainScores(groups [][]Alternative, omega func(tu Tuple, rank int) float64) ([]float64, error) {
	return andxor.PRFUncertainFast(groups, omega)
}

// PRFeUncertainScores is the PRFe(α) version of PRFUncertainScores,
// running in O(N log N).
func PRFeUncertainScores(groups [][]Alternative, alpha complex128) ([]complex128, error) {
	return andxor.PRFeUncertainFast(groups, alpha)
}

// ---------------------------------------------------------------------------
// Prior ranking semantics (Section 3.2) and consensus answers (Section 6).
// ---------------------------------------------------------------------------

// EScore returns Pr(t)·score(t) per tuple.
func EScore(d *Dataset) []float64 { return baselines.EScore(d) }

// ByProbability returns Pr(t) per tuple.
func ByProbability(d *Dataset) []float64 { return baselines.ByProbability(d) }

// Typed errors surfaced by the consensus top-k baselines (URank, UTopK,
// KSelection) on degenerate queries; match with errors.Is.
var (
	ErrEmptyDataset         = baselines.ErrEmptyDataset
	ErrBadK                 = baselines.ErrBadK
	ErrAllZeroProbabilities = baselines.ErrAllZeroProbabilities
	ErrNoPositiveAnswer     = baselines.ErrNoPositiveAnswer
)

// URank returns the distinct-tuples U-Rank top-k answer. Degenerate
// queries (empty dataset, k outside 1..n, all-zero probabilities) return a
// typed error; see ErrEmptyDataset, ErrBadK, ErrAllZeroProbabilities.
func URank(d *Dataset, k int) (Ranking, error) { return baselines.URank(d, k) }

// URankTree is U-Rank on a correlated dataset, with the same typed-error
// contract as URank.
func URankTree(t *Tree, k int) (Ranking, error) { return baselines.URankTree(t, k) }

// ERank returns E[r(t)] per tuple (lower is better); pair with ERankRanking.
func ERank(d *Dataset) []float64 { return baselines.ERank(d) }

// ERankRanking converts expected ranks into a best-first ranking.
func ERankRanking(expectedRanks []float64) Ranking { return baselines.ERankRanking(expectedRanks) }

// UTopK returns the exact U-Top answer for independent tuples: the k-set
// with the highest probability of being exactly the top-k, plus that
// probability. O(n log n). Degenerate queries return a typed error; when
// fewer than k tuples have positive probability the answer is
// ErrNoPositiveAnswer rather than an arbitrary zero-probability set.
func UTopK(d *Dataset, k int) (Ranking, float64, error) { return baselines.UTopK(d, k) }

// UTopKMonteCarloTree estimates the U-Top answer of a correlated dataset by
// world sampling.
func UTopKMonteCarloTree(t *Tree, k, samples int, rng *rand.Rand) Ranking {
	return baselines.UTopKMonteCarlo(baselines.TreeSampler{T: t}, k, samples, rng)
}

// KSelection solves the k-selection query exactly for independent tuples
// with non-negative scores (O(nk) dynamic program), returning the chosen set
// and its expected best score. Degenerate queries return a typed error.
func KSelection(d *Dataset, k int) (Ranking, float64, error) {
	return baselines.KSelection(d, k)
}

// ConsensusTopK returns the consensus top-k answer under symmetric
// difference (Theorem 2: identical to PT(k)'s top-k).
func ConsensusTopK(d *Dataset, k int) Ranking { return baselines.ConsensusTopK(d, k) }

// ConsensusTopKTree is ConsensusTopK on a correlated dataset.
func ConsensusTopKTree(t *Tree, k int) Ranking { return baselines.ConsensusTopKTree(t, k) }

// ExpectedSymDiff computes E[disΔ(τ, τ_pw)] in closed form.
func ExpectedSymDiff(d *Dataset, tau Ranking) float64 { return baselines.ExpectedSymDiff(d, tau) }

// ExpectedWeightedSymDiff computes E[dis_ω(τ, τ_pw)] for weighted symmetric
// difference (Theorem 3).
func ExpectedWeightedSymDiff(d *Dataset, tau Ranking, w []float64) float64 {
	return baselines.ExpectedWeightedSymDiff(d, tau, w)
}

// ---------------------------------------------------------------------------
// Approximation and learning (Section 5).
// ---------------------------------------------------------------------------

type (
	// ApproxOptions configures the DFT approximation pipeline.
	ApproxOptions = dftapprox.Options
	// ApproxTerm is one exponential of the approximation.
	ApproxTerm = dftapprox.Term
	// AlphaResult is the outcome of LearnAlpha.
	AlphaResult = learn.AlphaResult
	// OmegaOptions configures LearnOmega.
	OmegaOptions = learn.OmegaOptions
)

// DefaultApproxOptions returns the recommended DFT+DF+IS+ES configuration
// with L terms.
func DefaultApproxOptions(l int) ApproxOptions { return dftapprox.DefaultOptions(l) }

// ApproximateWeights fits ω(i), i ∈ [0, n), by a sum of L complex
// exponentials (Section 5.1).
func ApproximateWeights(omega func(i int) float64, n int, opts ApproxOptions) []ApproxTerm {
	return dftapprox.Approximate(omega, n, opts)
}

// ApproxPRFeTerms converts a weight-sequence approximation into the ExpTerm
// form consumed by PRFeCombo (rank j uses α^j).
func ApproxPRFeTerms(terms []ApproxTerm) []ExpTerm {
	rw := dftapprox.TermsForRankWeights(terms)
	out := make([]ExpTerm, len(rw))
	for i, t := range rw {
		out[i] = ExpTerm{U: t.U, Alpha: t.Alpha}
	}
	return out
}

// StepWeights returns the PT(h)-style step weight function on [0, n).
func StepWeights(n int) func(int) float64 { return dftapprox.Step(n) }

// LearnAlpha fits PRFe's α from a user-ranked sample by recursive grid
// refinement (Section 5.2).
func LearnAlpha(sample *Dataset, user Ranking, k, iters int) AlphaResult {
	return learn.LearnAlpha(sample, user, k, iters)
}

// LearnAlphaTree fits PRFe's α from a user-ranked sample of correlated data:
// the grid-refinement search of LearnAlpha running on one shared
// PreparedTree.
func LearnAlphaTree(sample *Tree, user Ranking, k, iters int) AlphaResult {
	return learn.LearnAlphaTree(sample, user, k, iters)
}

// LearnOmega fits a PRFω(h) weight vector from a user-ranked sample with an
// L2-regularized pairwise hinge loss (RankSVM objective).
func LearnOmega(sample *Dataset, user Ranking, opts OmegaOptions) []float64 {
	return learn.LearnOmega(sample, user, opts)
}

// ---------------------------------------------------------------------------
// Markov networks and junction trees (Section 9).
// ---------------------------------------------------------------------------

type (
	// MarkovNetwork is a factor graph over binary tuple-presence variables.
	MarkovNetwork = junction.Network
	// MarkovFactor is one potential of a Markov network.
	MarkovFactor = junction.Factor
	// JunctionTree is a calibrated junction tree.
	JunctionTree = junction.JTree
	// MarkovChain is the Section 9.3 chain special case.
	MarkovChain = junction.Chain
)

// NewMarkovNetwork validates and builds a Markov network over the given
// tuple scores.
func NewMarkovNetwork(scores []float64, factors []MarkovFactor) (*MarkovNetwork, error) {
	return junction.NewNetwork(scores, factors)
}

// BuildJunctionTree triangulates (min-fill), builds and calibrates the
// junction tree of a Markov network.
func BuildJunctionTree(net *MarkovNetwork) (*JunctionTree, error) {
	return junction.BuildJunctionTree(net)
}

// NetworkRankDistribution computes Pr(r(t)=j) on an arbitrarily correlated
// dataset via the Section 9.4 partial-sum dynamic program (polynomial for
// bounded treewidth).
func NetworkRankDistribution(net *MarkovNetwork) (*RankDistributionMatrix, error) {
	return junction.RankDistribution(net)
}

// NetworkPRF evaluates Υω over a Markov network.
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineForNetwork(net) and Rank with MetricPRF.
func NetworkPRF(net *MarkovNetwork, omega func(tu Tuple, rank int) float64) ([]float64, error) {
	return junction.PRF(net, omega)
}

// NetworkPRFe evaluates Υ_α over a Markov network.
//
// Deprecated: kept as a working one-shot wrapper. New code should use
// EngineForNetwork(net) and Rank with MetricPRFe.
func NetworkPRFe(net *MarkovNetwork, alpha complex128) ([]complex128, error) {
	return junction.PRFe(net, alpha)
}

// NewMarkovChain builds the Section 9.3 chain model from calibrated pairwise
// joints Pr(Y_j, Y_{j+1}).
func NewMarkovChain(scores []float64, pair [][2][2]float64) (*MarkovChain, error) {
	return junction.NewChain(scores, pair)
}

// PreparedNetwork is an immutable prepared view of a Markov network: the
// junction tree is built and calibrated once, the rank-distribution matrix
// is cached on first use, and the partial-sum DP buffers are pooled, so
// repeated ranking queries (PRF, PRFe, PRFeBatch over an α grid, ERank)
// stop re-triangulating and re-running the DP. Safe for concurrent use.
type PreparedNetwork = junction.PreparedNetwork

// PrepareNetwork builds the prepared view of a Markov network. The one-shot
// Network* functions are thin prepare-then-call wrappers over its methods.
func PrepareNetwork(net *MarkovNetwork) (*PreparedNetwork, error) {
	return junction.PrepareNetwork(net)
}

// PreparedChain is an immutable prepared view of a Markov chain serving
// repeated PRFe queries with the product-tree algorithm: a segment tree of
// 2×2 transfer matrices shares all prefix/suffix sub-products across the n
// tuples, so one α costs O(n log n) instead of the Θ(n³) rank-distribution
// DP (kept as the PRFeChainDP reference). Safe for concurrent use.
type PreparedChain = junction.PreparedChain

// PrepareChain builds the prepared view of a Markov chain.
func PrepareChain(c *MarkovChain) *PreparedChain { return junction.PrepareChain(c) }

// ---------------------------------------------------------------------------
// Rank-comparison metrics (Section 3.2).
// ---------------------------------------------------------------------------

// KendallTopK is the paper's normalized Kendall distance between top-k lists
// (Fagin et al., optimistic variant, divided by k²).
func KendallTopK(a, b Ranking, k int) float64 { return rankdist.KendallTopK(a, b, k) }

// KendallFull is the classical normalized Kendall tau over full rankings.
func KendallFull(a, b Ranking) float64 { return rankdist.KendallFull(a, b) }

// FootruleTopK is the normalized Spearman footrule for top-k lists.
func FootruleTopK(a, b Ranking, k int) float64 { return rankdist.FootruleTopK(a, b, k) }

// IntersectionMetric is 1 − |A ∩ B|/k for top-k answers.
func IntersectionMetric(a, b Ranking, k int) float64 { return rankdist.Intersection(a, b, k) }

// PRFl evaluates the PRFℓ special case ω(i) = −i (Section 3.3) for every
// tuple: the negated expected rank restricted to worlds containing t.
func PRFl(d *Dataset) []float64 { return core.PRFl(d) }

// ExpectedRankDecomposition splits E[r(t)] into the Section 3.3 parts:
// er1 (worlds containing t, equal to −PRFℓ) and er2 (worlds missing t).
func ExpectedRankDecomposition(d *Dataset) (er1, er2 []float64) {
	return core.ExpectedRankDecomposition(d)
}

// LinearWeights returns the decaying-linear weight function n−i on [0, n).
func LinearWeights(n int) func(int) float64 { return dftapprox.LinearDecay(n) }

// SmoothWeights returns the fixed smooth weight function used as the
// paper's "sfunc" stand-in.
func SmoothWeights(n int) func(int) float64 { return dftapprox.Smooth(n) }

// LogDiscountWeights returns the IR discount ω(i) = ln2/ln(i+2) on [0, n)
// (Section 3.3's discount-factor example).
func LogDiscountWeights(n int) func(int) float64 { return dftapprox.LogDiscount(n) }

// SpectrumSize counts the distinct PRFe rankings the dataset passes through
// as α sweeps (0, 1) — exactly, by counting the kinetic sweep's crossing
// events — the Section 7 observation that PRFe spans up to O(n²) rankings
// while PT(h) spans at most n. Use SpectrumSizeGrid for the cheaper sampled
// count on a uniform grid.
func SpectrumSize(d *Dataset) int { return core.SpectrumSize(d) }

// SpectrumSizeGrid counts distinct PRFe rankings over a uniform α grid —
// the sampled spectrum, which misses rankings that live between grid points.
func SpectrumSizeGrid(d *Dataset, gridSize int) int { return core.SpectrumSizeGrid(d, gridSize) }

// TreeRankByKey aggregates PRFe values per possible-worlds key on a tree —
// the Section 4.4 reduction on arbitrary correlated data: leaves sharing a
// key are score alternatives of one logical tuple. Returns the keys
// best-first with their |Υ| values.
func TreeRankByKey(t *Tree, alpha complex128) (keys []string, values []float64) {
	return andxor.RankByKey(t, alpha)
}

// NetworkExpectedRanks returns E[r(t)] on an arbitrarily correlated dataset
// via the junction-tree partial-sum DP (prepare-then-call wrapper).
func NetworkExpectedRanks(net *MarkovNetwork) ([]float64, error) {
	pn, err := junction.PrepareNetwork(net)
	if err != nil {
		return nil, err
	}
	return pn.ERank(), nil
}

// LearnPRFeComboTerms learns a linear combination of PRFe functions from a
// user-ranked sample: LearnOmega followed by the DFT compression into L
// exponentials (the paper's two-stage recipe). The result plugs into
// PRFeCombo for O(n·L) ranking at any scale.
func LearnPRFeComboTerms(sample *Dataset, user Ranking, omega OmegaOptions, l int) []ExpTerm {
	return learn.LearnPRFeCombo(sample, user, learn.ComboOptions{Omega: omega, L: l})
}
