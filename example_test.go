package prf_test

import (
	"context"
	"fmt"

	prf "repro"
)

// The paper's Example 7: four tuples trading score against probability;
// PRFe(α) spans the spectrum between the two extreme orders.
func ExampleRankPRFe() {
	d, _ := prf.NewDataset(
		[]float64{100, 80, 50, 30},
		[]float64{0.4, 0.6, 0.5, 0.9},
	)
	fmt.Println(prf.RankPRFe(d, 0.5)) // balanced
	fmt.Println(prf.RankPRFe(d, 1.0)) // by probability
	// Output:
	// [1 0 3 2]
	// [3 1 2 0]
}

// Rank distributions are exact positional probabilities computed by the
// generating-function Algorithm 1 (the paper's Example 1).
func ExampleRankDistribution() {
	d, _ := prf.NewDataset([]float64{30, 20, 10}, []float64{0.5, 0.6, 0.4})
	rd := prf.RankDistribution(d)
	fmt.Printf("%.2f %.2f %.2f\n", rd.At(2, 1), rd.At(2, 2), rd.At(2, 3))
	// Output:
	// 0.08 0.20 0.12
}

// PRFe evaluates the generating function at the point α (Example 5).
func ExamplePRFe() {
	d, _ := prf.NewDataset([]float64{30, 20, 10}, []float64{0.5, 0.6, 0.4})
	vals := prf.PRFe(d, complex(0.6, 0))
	fmt.Printf("%.5f\n", real(vals[2]))
	// Output:
	// 0.14592
}

// And/xor trees capture mutual exclusion; Pr(r(t4)=3) on the Figure 1
// traffic database is the paper's Example 4.
func ExampleTreeRankDistribution() {
	tree, _ := prf.NewTree(prf.NewAnd(
		prf.NewXor([]float64{0.4}, prf.NewLeaf(120)),
		prf.NewXor([]float64{0.7, 0.3}, prf.NewLeaf(130), prf.NewLeaf(80)),
		prf.NewXor([]float64{0.4, 0.6}, prf.NewLeaf(95), prf.NewLeaf(110)),
		prf.NewXor([]float64{1.0}, prf.NewLeaf(105)),
	))
	rd := prf.TreeRankDistribution(tree)
	fmt.Printf("%.3f\n", rd.At(3, 3))
	// Output:
	// 0.216
}

// U-Top returns the most probable top-k set together with its probability.
func ExampleUTopK() {
	d, _ := prf.NewDataset([]float64{10, 5}, []float64{0.9, 0.8})
	set, p, _ := prf.UTopK(d, 1)
	fmt.Println(set, p)
	// Output:
	// [0] 0.9
}

// The consensus top-k (Theorem 2) is PT(k)'s answer; its expected symmetric
// difference from the random world's true top-k is minimal.
func ExampleConsensusTopK() {
	d, _ := prf.NewDataset([]float64{10, 8, 6}, []float64{0.9, 0.2, 0.9})
	tau := prf.ConsensusTopK(d, 2)
	fmt.Println(tau)
	fmt.Printf("%.3f\n", prf.ExpectedSymDiff(d, tau))
	// Output:
	// [0 2]
	// 0.562
}

// LearnAlpha recovers the PRFe parameter from a user-ranked sample.
func ExampleLearnAlpha() {
	scores := make([]float64, 200)
	probs := make([]float64, 200)
	for i := range scores {
		scores[i] = float64(200 - i)
		probs[i] = float64((i*37)%97)/100 + 0.01
	}
	d, _ := prf.NewDataset(scores, probs)
	user := prf.RankPRFe(d, 0.8)
	res := prf.LearnAlpha(d, user, 50, 8)
	fmt.Printf("distance %.4f\n", res.Distance)
	// Output:
	// distance 0.0000
}

// KendallTopK is the paper's normalized top-k distance: 0 for identical
// answers, 1 for disjoint ones.
func ExampleKendallTopK() {
	a := prf.Ranking{1, 2, 3}
	b := prf.Ranking{3, 2, 1}
	fmt.Printf("%.4f %.4f\n", prf.KendallTopK(a, a, 3), prf.KendallTopK(a, b, 3))
	// Output:
	// 0.0000 0.3333
}

// The unified engine answers any PRF-family query on any backend through
// one declarative API. On an independent dataset, a monotone α grid
// automatically rides the kinetic sweep.
func ExampleEngine() {
	d, _ := prf.NewDataset(
		[]float64{100, 80, 50, 30},
		[]float64{0.4, 0.6, 0.5, 0.9},
	)
	eng := prf.EngineFor(d)
	res, _ := eng.Rank(context.Background(), prf.Query{
		Metric: prf.MetricPRFe, Alpha: 0.5, Output: prf.OutputRanking,
	})
	fmt.Println(res.Ranking)
	batch, _ := eng.RankBatch(context.Background(), prf.Query{
		Metric: prf.MetricPRFe, Alphas: []float64{0.5, 1.0}, Output: prf.OutputTopK, K: 2,
	})
	for _, r := range batch {
		fmt.Println(r.Alpha, r.Ranking)
	}
	// Output:
	// [1 0 3 2]
	// 0.5 [1 0]
	// 1 [3 1]
}

// The same Query runs unchanged on correlated data: here the paper's
// Figure 1 traffic database as an and/xor tree.
func ExampleEngine_tree() {
	tree, _ := prf.NewTree(prf.NewAnd(
		prf.NewXor([]float64{0.4}, prf.NewLeaf(120)),
		prf.NewXor([]float64{0.7, 0.3}, prf.NewLeaf(130), prf.NewLeaf(80)),
		prf.NewXor([]float64{0.4, 0.6}, prf.NewLeaf(95), prf.NewLeaf(110)),
		prf.NewXor([]float64{1.0}, prf.NewLeaf(105)),
	))
	eng := prf.EngineForTree(tree)
	res, _ := eng.Rank(context.Background(), prf.Query{
		Metric: prf.MetricPTh, H: 2, Output: prf.OutputTopK, K: 3,
	})
	fmt.Println(res.Ranking)
	// Output:
	// [1 4 0]
}

// Arbitrary correlations run through the junction-tree backend; the
// engine folds the cached rank-distribution matrix per query.
func ExampleEngine_network() {
	net, _ := prf.NewMarkovNetwork([]float64{30, 20, 10}, []prf.MarkovFactor{
		{Vars: []int{0, 1}, Table: []float64{0.2, 0.1, 0.1, 0.6}},
		{Vars: []int{1, 2}, Table: []float64{0.5, 0.5, 0.8, 0.2}},
	})
	eng, _ := prf.EngineForNetwork(net)
	res, _ := eng.Rank(context.Background(), prf.Query{
		Metric: prf.MetricPRFe, Alpha: 0.95, Output: prf.OutputRanking,
	})
	fmt.Println(res.Ranking)
	// Output:
	// [0 1 2]
}

// Repeated dashboards wrap the engine in the result cache: identical
// queries after the first answer from the canonical-query LRU, bit for bit.
// Prepared views are immutable, so the cache never invalidates.
func ExampleNewCachedEngine() {
	d, _ := prf.NewDataset(
		[]float64{100, 80, 50, 30},
		[]float64{0.4, 0.6, 0.5, 0.9},
	)
	cached := prf.NewCachedEngine(prf.EngineFor(d), 128)
	q := prf.Query{Metric: prf.MetricPRFe, Alpha: 0.5, Output: prf.OutputTopK, K: 2}
	for refresh := 0; refresh < 3; refresh++ {
		res, _ := cached.Rank(context.Background(), q)
		fmt.Println(res.Ranking)
	}
	st := cached.Stats()
	fmt.Printf("hits=%d misses=%d\n", st.Hits, st.Misses)
	// Output:
	// [1 0]
	// [1 0]
	// [1 0]
	// hits=2 misses=1
}

// Markov chains get the O(n log n) product-tree PRFe kernel behind the
// same API.
func ExampleEngine_chain() {
	chain, _ := prf.NewMarkovChain([]float64{3, 1, 2}, [][2][2]float64{
		{{0.2, 0.3}, {0.1, 0.4}}, // Pr(Y_0, Y_1)
		{{0.2, 0.1}, {0.4, 0.3}}, // Pr(Y_1, Y_2)
	})
	eng := prf.EngineForChain(chain)
	res, _ := eng.Rank(context.Background(), prf.Query{Metric: prf.MetricPRFe, Alpha: 0.5})
	for v, u := range res.Complex {
		fmt.Printf("t%d: %.4f\n", v, real(u))
	}
	// Output:
	// t0: 0.2500
	// t1: 0.1964
	// t2: 0.1488
}
