// House search: the paper's motivating application (Section 1). A crawled
// real-estate dataset is noisy — the most attractive listings are also the
// most likely to be already sold. Each listing gets a desirability score and
// a probability that the advertisement is still valid; the example shows how
// the choice of ranking function changes what the user sees, and how a
// PRFe parameter can be learned from the user's feedback on a sample.
//
//	go run ./examples/housesearch
package main

import (
	"fmt"
	"log"
	"math/rand"

	prf "repro"
)

type listing struct {
	name  string
	score float64 // desirability (size, location, price, …)
	valid float64 // probability the ad is still valid
}

func main() {
	rng := rand.New(rand.NewSource(7))
	// Hand-picked head of the market plus a random tail: desirable houses
	// sell fast, so score and validity are anti-correlated.
	listings := []listing{
		{"lakefront villa", 98, 0.15},
		{"penthouse downtown", 95, 0.25},
		{"garden house", 90, 0.35},
		{"modern townhouse", 84, 0.55},
		{"quiet bungalow", 78, 0.70},
		{"family duplex", 74, 0.80},
		{"starter condo", 65, 0.90},
		{"fixer-upper", 50, 0.97},
	}
	for i := 0; i < 80; i++ {
		s := 30 + rng.Float64()*60
		listings = append(listings, listing{
			name:  fmt.Sprintf("listing-%02d", i),
			score: s,
			valid: clamp(1.15-s/100+0.2*rng.NormFloat64(), 0.02, 0.98),
		})
	}

	scores := make([]float64, len(listings))
	probs := make([]float64, len(listings))
	for i, l := range listings {
		scores[i] = l.score
		probs[i] = l.valid
	}
	d, err := prf.NewDataset(scores, probs)
	if err != nil {
		log.Fatal(err)
	}

	show := func(title string, r prf.Ranking) {
		fmt.Printf("%s\n", title)
		for i, id := range r.TopK(5) {
			l := listings[id]
			fmt.Printf("  %d. %-20s score %5.1f  valid %.2f\n", i+1, l.name, l.score, l.valid)
		}
	}

	// Three users, three risk attitudes, one parameter.
	show("risk-seeking shopper (PRFe α=0.3): best houses, maybe gone", prf.RankPRFe(d, 0.3))
	show("\nbalanced shopper (PRFe α=0.9):", prf.RankPRFe(d, 0.9))
	show("\ncautious shopper (PRFe α=0.999): must still be available", prf.RankPRFe(d, 0.999))
	show("\nexpected-score ranking for contrast:", prf.TopK(prf.EScore(d), 5))

	// Learning from feedback (Section 5.2): the user reorders a sample of
	// 20 listings; we fit α to their preference and rank the full market.
	sample, _ := d.Subset(rng.Perm(d.Len())[:20])
	// Suppose the user's implicit preference is PT(5): "show me things
	// likely to be among the 5 best available".
	userRanking := prf.RankByValue(prf.PTh(sample, 5))
	res := prf.LearnAlpha(sample, userRanking, 10, 8)
	fmt.Printf("\nlearned α=%.4f from a 20-listing sample (sample Kendall distance %.4f)\n",
		res.Alpha, res.Distance)
	show("personalized ranking with the learned α:", prf.RankPRFe(d, res.Alpha))

	// How close is the personalized ranking to the user's true preference
	// on the whole market?
	truth := prf.RankByValue(prf.PTh(d, 5))
	learned := prf.RankPRFe(d, res.Alpha)
	fmt.Printf("\nfull-market Kendall distance to the user's true preference: %.4f\n",
		prf.KendallTopK(truth.TopK(10), learned.TopK(10), 10))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
