// Sensor networks with arbitrary correlations (Section 9): temperature
// sensors along a pipeline report anomalies; neighboring sensors are
// positively correlated (heat spreads), so presence variables form a Markov
// chain, and a shared power bus couples two distant groups — a genuine
// Markov *network*. The example ranks "most anomalous sensor readings"
// with the junction-tree algorithm and compares against the chain fast path
// and an independence-assuming ranking.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"

	prf "repro"
)

func main() {
	// 12 sensors; score = anomaly magnitude (°C above seasonal normal).
	scores := []float64{8.5, 7.9, 7.2, 6.8, 6.1, 5.5, 5.0, 4.4, 3.9, 3.1, 2.5, 2.0}
	n := len(scores)

	// Unary potentials: base anomaly probabilities.
	factors := make([]prf.MarkovFactor, 0, 2*n)
	base := []float64{0.3, 0.5, 0.4, 0.6, 0.3, 0.5, 0.4, 0.6, 0.3, 0.5, 0.4, 0.6}
	for v := 0; v < n; v++ {
		factors = append(factors, prf.MarkovFactor{
			Vars: []int{v}, Table: []float64{1 - base[v], base[v]},
		})
	}
	// Chain coupling: adjacent sensors tend to agree (both anomalous or
	// both normal get weight 2, disagreement weight 1).
	for v := 0; v+1 < n; v++ {
		factors = append(factors, prf.MarkovFactor{
			Vars: []int{v, v + 1}, Table: []float64{2, 1, 1, 2},
		})
	}
	// Shared power bus couples sensors 2 and 9 across the pipeline.
	factors = append(factors, prf.MarkovFactor{
		Vars: []int{2, 9}, Table: []float64{3, 1, 1, 3},
	})

	net, err := prf.NewMarkovNetwork(scores, factors)
	if err != nil {
		log.Fatal(err)
	}
	// One prepared view serves every query below: the junction tree is
	// built and calibrated once, and the Section 9.4 DP runs once.
	pn, err := prf.PrepareNetwork(net)
	if err != nil {
		log.Fatal(err)
	}
	jt := pn.JTree()
	fmt.Printf("junction tree: %d cliques, treewidth %d\n", jt.NumCliques(), jt.Treewidth())

	// Exact rank distributions under the full correlation structure.
	rd := pn.RankDistribution()
	fmt.Println("\nPr(sensor ranks among top 3 anomalies):")
	top3 := make([]float64, n)
	for v := 0; v < n; v++ {
		top3[v] = rd.At(prf.TupleID(v), 1) + rd.At(prf.TupleID(v), 2) + rd.At(prf.TupleID(v), 3)
	}
	for _, id := range prf.TopK(top3, 5) {
		fmt.Printf("  sensor %2d: %.4f (anomaly %.1f°C, marginal %.3f)\n",
			id, top3[id], scores[id], pn.Marginal(int(id)))
	}

	// PRFe over the network vs an independence-assuming PRFe with the same
	// marginals.
	corr := prf.RankByValue(prf.RealParts(pn.PRFe(complex(0.9, 0))))
	margs := make([]float64, n)
	for v := 0; v < n; v++ {
		margs[v] = pn.Marginal(v)
	}
	indepD, err := prf.NewDataset(scores, margs)
	if err != nil {
		log.Fatal(err)
	}
	indep := prf.RankPRFe(indepD, 0.9)
	fmt.Printf("\nPRFe(0.9) with correlations:    %v\n", corr.TopK(6))
	fmt.Printf("PRFe(0.9) assuming independence: %v\n", indep.TopK(6))
	fmt.Printf("Kendall distance: %.4f\n", prf.KendallTopK(corr.TopK(6), indep.TopK(6), 6))

	// The pure-chain fast path (Section 9.3) on the first 6 sensors,
	// parameterized by calibrated pairwise joints.
	pair := make([][2][2]float64, 5)
	marg := 0.4
	for j := range pair {
		// Positively correlated consecutive pairs with consistent margins.
		stay := 0.75
		pair[j][1][1] = marg * stay
		pair[j][1][0] = marg * (1 - stay)
		pair[j][0][1] = (1 - marg) * (1 - stay) * marg / (1 - marg)
		pair[j][0][0] = 1 - pair[j][1][1] - pair[j][1][0] - pair[j][0][1]
		marg = pair[j][1][1] + pair[j][0][1]
	}
	chain, err := prf.NewMarkovChain(scores[:6], pair)
	if err != nil {
		log.Fatal(err)
	}
	crd := chain.RankDistribution()
	fmt.Println("\nMarkov-chain fast path, Pr(r(sensor 0)=j):")
	for j := 1; j <= 3; j++ {
		fmt.Printf("  j=%d: %.4f\n", j, crd.At(0, j))
	}

	// The prepared chain answers a whole α sweep with the product-tree
	// algorithm (O(n log n) per α instead of the cubic DP).
	pc := prf.PrepareChain(chain)
	sweep := pc.RankPRFeBatch([]float64{0.5, 0.9, 1.0})
	fmt.Println("\nchain PRFe sweep (α = 0.5, 0.9, 1.0), best first:")
	for i, a := range []float64{0.5, 0.9, 1.0} {
		fmt.Printf("  α=%.1f: %v\n", a, sweep[i])
	}
}
