// Correlated data: the paper's Figure 1 traffic-monitoring database. Radar
// readings of speeding cars are uncertain, and readings of the same car at
// different locations are mutually exclusive (a car is in one place at a
// time) — correlations captured by a probabilistic and/xor tree. The example
// ranks with the tree-aware algorithms, shows what ignoring the correlations
// would do, and demonstrates uncertain scores (Section 4.4).
//
//	go run ./examples/correlated
package main

import (
	"fmt"
	"log"

	prf "repro"
)

func main() {
	// Figure 1: six radar readings; t2/t3 are the same car (Y-245) seen at
	// two locations, as are t4/t5 (Z-541); t6 is certain.
	names := []string{"t1 (X-123 @120)", "t2 (Y-245 @130)", "t3 (Y-245 @80)",
		"t4 (Z-541 @95)", "t5 (Z-541 @110)", "t6 (L-110 @105)"}
	tree, err := prf.NewTree(prf.NewAnd(
		prf.NewXor([]float64{0.4}, prf.NewLeaf(120)),
		prf.NewXor([]float64{0.7, 0.3},
			prf.NewKeyedLeaf("Y-245", 130), prf.NewKeyedLeaf("Y-245", 80)),
		prf.NewXor([]float64{0.4, 0.6},
			prf.NewKeyedLeaf("Z-541", 95), prf.NewKeyedLeaf("Z-541", 110)),
		prf.NewXor([]float64{1.0}, prf.NewLeaf(105)),
	))
	if err != nil {
		log.Fatal(err)
	}

	// Positional probabilities on the tree (Example 4 of the paper).
	rd := prf.TreeRankDistribution(tree)
	fmt.Printf("Pr(r(t4)=3) = %.3f   (the paper computes 0.216)\n\n", rd.At(3, 3))

	// Correlation-aware ranking vs pretending the tuples are independent.
	aware := prf.TreeRankPRFe(tree, 0.9)
	indep := prf.RankPRFe(tree.Dataset(), 0.9)
	fmt.Println("PRFe(0.9) with correlations:   ", label(aware, names))
	fmt.Println("PRFe(0.9) assuming independence:", label(indep, names))
	fmt.Printf("Kendall distance between the two: %.4f\n\n",
		prf.KendallTopK(aware.TopK(3), indep.TopK(3), 3))

	// Which cars are most likely among the top 2 speeders?
	pt := prf.TreePTh(tree, 2)
	fmt.Println("PT(2) = Pr(among top 2):")
	for _, id := range prf.TopK(pt, 3) {
		fmt.Printf("  %-18s %.3f\n", names[id], pt[id])
	}

	// Consensus answer (Section 6) and U-Rank on the tree.
	fmt.Printf("\nconsensus top-2: %v\n", label(prf.ConsensusTopKTree(tree, 2), names))
	uRank, err := prf.URankTree(tree, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("U-Rank top-3:    %v\n", label(uRank, names))
	fmt.Printf("expected ranks:  ")
	for id, er := range prf.TreeExpectedRanks(tree) {
		fmt.Printf("%s=%.2f ", names[id][:2], er)
	}
	fmt.Println()

	// Uncertain scores (Section 4.4): each car's measured speed is itself a
	// small distribution; alternatives become xor groups.
	groups := [][]prf.Alternative{
		{{Score: 130, Prob: 0.5}, {Score: 120, Prob: 0.3}}, // car A
		{{Score: 125, Prob: 0.8}},                          // car B
		{{Score: 140, Prob: 0.2}, {Score: 100, Prob: 0.7}}, // car C
	}
	vals, err := prf.PRFeUncertainScores(groups, complex(0.9, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nuncertain speeds — PRFe(0.9) per car:")
	for g, v := range vals {
		fmt.Printf("  car %c: %.4f\n", 'A'+g, real(v))
	}
}

func label(r prf.Ranking, names []string) []string {
	out := make([]string, len(r))
	for i, id := range r {
		out[i] = names[id]
	}
	return out
}
