// Nearest neighbors over uncertain points. The paper observes (Section 2)
// that a k-NN query over uncertain points *is* a ranking query: the score of
// a point is the negated distance to the query. Here each detected object
// has a discrete distribution over candidate locations (think noisy GPS
// fixes), so the score itself is uncertain — exactly the Section 4.4 model —
// and the specialized O(N log N) uncertain-scores PRFe algorithm answers
// the query.
//
//	go run ./examples/nearestneighbor
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	prf "repro"
)

type fix struct {
	x, y float64
	p    float64
}

type object struct {
	name string
	fixs []fix
}

func main() {
	rng := rand.New(rand.NewSource(11))
	// Each object has 2-4 candidate positions with probabilities ≤ 1 (the
	// residual mass means "object not actually present").
	var objects []object
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(3)
		fixs := make([]fix, n)
		cx, cy := rng.Float64()*100, rng.Float64()*100
		rem := 0.6 + 0.4*rng.Float64()
		for j := range fixs {
			p := rem / float64(n)
			fixs[j] = fix{x: cx + rng.NormFloat64()*3, y: cy + rng.NormFloat64()*3, p: p}
		}
		objects = append(objects, object{name: fmt.Sprintf("obj-%02d", i), fixs: fixs})
	}

	qx, qy := 50.0, 50.0
	fmt.Printf("query point (%.0f, %.0f), %d uncertain objects\n\n", qx, qy, len(objects))

	// Score of a candidate fix = −distance to the query; alternatives of an
	// object are mutually exclusive (it has one true position).
	groups := make([][]prf.Alternative, len(objects))
	for i, o := range objects {
		alts := make([]prf.Alternative, len(o.fixs))
		for j, f := range o.fixs {
			alts[j] = prf.Alternative{
				Score: -math.Hypot(f.x-qx, f.y-qy),
				Prob:  f.p,
			}
		}
		groups[i] = alts
	}

	// PRFe over uncertain scores: one Υ per object, O(N log N) in the total
	// number of candidate fixes.
	vals, err := prf.PRFeUncertainScores(groups, complex(0.9, 0))
	if err != nil {
		log.Fatal(err)
	}
	type scored struct {
		idx int
		v   float64
	}
	ranked := make([]scored, len(vals))
	for i, v := range vals {
		ranked[i] = scored{i, real(v)}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].v > ranked[b].v })

	fmt.Println("probabilistic 5-NN (PRFe α=0.9 over uncertain distances):")
	for rank := 0; rank < 5; rank++ {
		o := objects[ranked[rank].idx]
		best := o.fixs[0]
		for _, f := range o.fixs {
			if math.Hypot(f.x-qx, f.y-qy) < math.Hypot(best.x-qx, best.y-qy) {
				best = f
			}
		}
		fmt.Printf("  %d. %s  Υ=%.4f  closest fix (%.1f, %.1f) at distance %.1f\n",
			rank+1, o.name, ranked[rank].v, best.x, best.y, math.Hypot(best.x-qx, best.y-qy))
	}

	// Contrast with the naive expected-distance ranking, which ignores the
	// interplay between presence probabilities across objects.
	fmt.Println("\nnaive expected-distance 5-NN for contrast:")
	type exp struct {
		idx int
		d   float64
	}
	naive := make([]exp, len(objects))
	for i, o := range objects {
		var ed, mass float64
		for _, f := range o.fixs {
			ed += f.p * math.Hypot(f.x-qx, f.y-qy)
			mass += f.p
		}
		naive[i] = exp{i, ed / mass}
	}
	sort.Slice(naive, func(a, b int) bool { return naive[a].d < naive[b].d })
	for rank := 0; rank < 5; rank++ {
		fmt.Printf("  %d. %s  E[dist]=%.1f\n", rank+1, objects[naive[rank].idx].name, naive[rank].d)
	}
}
