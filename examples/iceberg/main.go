// Iceberg monitoring at scale: an IIP-style workload (Section 8) with
// 200,000 uncertain sighting records ranked by drift duration. The example
// shows the production path for large datasets: O(n) PRFe ranking, and the
// Section 5.1 trick of approximating an expensive PRFω function — PT(1000) —
// by a 20-term linear combination of PRFe functions, at a fraction of the
// exact cost.
//
//	go run ./examples/iceberg
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	prf "repro"
)

func main() {
	const n = 200000
	rng := rand.New(rand.NewSource(42))

	// Synthesize sightings: drift days (heavy-tailed) + confidence level of
	// the sighting source, exactly the two columns the paper extracts from
	// the real IIP dataset.
	levels := []float64{0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.4}
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		mean := 30.0
		if rng.Float64() < 0.1 {
			mean = 400 // a few icebergs drift for years
		}
		scores[i] = rng.ExpFloat64() * mean
		p := levels[rng.Intn(len(levels))] + rng.NormFloat64()*0.01
		probs[i] = min(0.99, max(0.01, p))
	}
	d, err := prf.NewDataset(scores, probs)
	if err != nil {
		log.Fatal(err)
	}
	d.SortByScore()

	// Fast path: PRFe in one scan.
	start := time.Now()
	prfe := prf.RankPRFe(d, 0.95)
	fmt.Printf("PRFe(0.95) ranked %d sightings in %v\n", n, time.Since(start))
	fmt.Println("top 5 sightings (drift days, confidence):")
	for i, id := range prfe.TopK(5) {
		t, _ := d.ByID(id)
		fmt.Printf("  %d. #%d: %7.1f days, conf %.2f\n", i+1, id, t.Score, t.Prob)
	}

	// Expensive semantics: PT(1000) — "probability of being among the 1000
	// longest-drifting icebergs still out there".
	const h = 1000
	start = time.Now()
	exactVals := prf.PTh(d, h)
	exact := prf.RankByValue(exactVals)
	exactTime := time.Since(start)
	fmt.Printf("\nexact PT(%d): %v\n", h, exactTime)

	// Approximate the step weight function by 20 complex exponentials and
	// evaluate as 20 linear PRFe scans.
	start = time.Now()
	terms := prf.ApproximateWeights(prf.StepWeights(h), h, prf.DefaultApproxOptions(20))
	combo := prf.PRFeCombo(d, prf.ApproxPRFeTerms(terms))
	approx := prf.RankByValue(prf.RealParts(combo))
	approxTime := time.Since(start)
	fmt.Printf("20-term PRFe approximation: %v (%.1fx faster)\n",
		approxTime, exactTime.Seconds()/approxTime.Seconds())
	fmt.Printf("top-%d Kendall distance exact vs approx: %.4f\n",
		h, prf.KendallTopK(exact.TopK(h), approx.TopK(h), h))

	// How different are the semantics themselves?
	k := 100
	fmt.Printf("\ntop-%d disagreement between semantics (normalized Kendall):\n", k)
	eScore := prf.TopK(prf.EScore(d), k)
	eRank := prf.ERankRanking(prf.ERank(d)).TopK(k)
	fmt.Printf("  PRFe(0.95) vs PT(%d):   %.4f\n", h,
		prf.KendallTopK(prfe.TopK(k), exact.TopK(k), k))
	fmt.Printf("  PRFe(0.95) vs E-Score:  %.4f\n",
		prf.KendallTopK(prfe.TopK(k), eScore, k))
	fmt.Printf("  PRFe(0.95) vs E-Rank:   %.4f\n",
		prf.KendallTopK(prfe.TopK(k), eRank, k))
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
