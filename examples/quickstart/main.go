// Quickstart: rank a small uncertain relation with the parameterized
// ranking functions and inspect the machinery the paper builds on.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	prf "repro"
)

func main() {
	ctx := context.Background()

	// Example 7 from the paper: four tuples trading score against
	// probability. t1 has the best score but the lowest probability.
	d, err := prf.NewDataset(
		[]float64{100, 80, 50, 30},    // scores
		[]float64{0.4, 0.6, 0.5, 0.9}, // existence probabilities
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tuples (ID: score, probability):")
	for _, t := range d.Tuples() {
		fmt.Printf("  t%d: %3.0f  %.1f\n", t.ID+1, t.Score, t.Prob)
	}

	// The unified engine answers every PRF-family query through one
	// declarative API; the same Query would run unchanged on an and/xor
	// tree, a junction network or a Markov chain backend.
	eng := prf.EngineFor(d)

	// PRFe(α) spans a spectrum of rankings: risk-seeking (α→0 favors the
	// chance of being the single best tuple) to conservative (α=1 ranks by
	// probability alone). The monotone grid rides the kinetic sweep.
	fmt.Println("\nPRFe rankings across α:")
	batch, err := eng.RankBatch(ctx, prf.Query{
		Metric: prf.MetricPRFe,
		Alphas: []float64{0.01, 0.5, 0.75, 1.0},
		Output: prf.OutputRanking,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range batch {
		fmt.Printf("  α=%.2f: %v\n", res.Alpha, names(res.Ranking))
	}

	// Exact rank distributions via the generating-function Algorithm 1.
	fmt.Println("\nrank distribution of t4 (Pr(r=j)):")
	rd := prf.RankDistribution(d)
	for j := 1; j <= 4; j++ {
		fmt.Printf("  Pr(r(t4)=%d) = %.4f\n", j, rd.At(3, j))
	}

	// Prior semantics for comparison.
	fmt.Println("\nother ranking functions:")
	fmt.Printf("  E-Score ranking:   %v\n", names(prf.TopK(prf.EScore(d), 4)))
	fmt.Printf("  PT(2) ranking:     %v\n", names(prf.TopK(prf.PTh(d, 2), 4)))
	fmt.Printf("  E-Rank ranking:    %v\n", names(prf.ERankRanking(prf.ERank(d))))
	uTop, p, err := prf.UTopK(d, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  U-Top 2-set:       %v (probability %.3f)\n", names(uTop), p)
	kSel, v, err := prf.KSelection(d, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  2-selection:       %v (expected best score %.2f)\n", names(kSel), v)

	// The consensus view (Section 6): PT(k)'s answer minimizes the expected
	// set difference from the random world's true top-k.
	tau := prf.ConsensusTopK(d, 2)
	fmt.Printf("\nconsensus top-2 %v, expected symmetric difference %.4f\n",
		names(tau), prf.ExpectedSymDiff(d, tau))
}

func names(r prf.Ranking) []string {
	out := make([]string, len(r))
	for i, id := range r {
		out[i] = fmt.Sprintf("t%d", id+1)
	}
	return out
}
