// Conformance suite of the unified Ranker engine: for each of the four
// backends, Engine.Rank / Engine.RankBatch answers must be bit-for-bit
// identical to the legacy one-shot and prepared functions they subsume. The
// engine adds dispatch, validation and cancellation — never arithmetic —
// and this suite is the certificate. Run under -race (CI does) the parallel
// subtests additionally exercise concurrent batch queries over the shared
// views.
package prf_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	prf "repro"
	"repro/internal/datagen"
	"repro/internal/junction"
)

// conformance bundles one backend's engine with closures over the legacy
// functions it must reproduce. Legacy closures are nil where no pre-engine
// function existed (those capabilities are covered by cross-backend checks
// instead).
type conformance struct {
	name string
	eng  *prf.Engine
	n    int

	prfe     func(alpha complex128) []complex128
	rankPRFe func(alpha float64) prf.Ranking
	prfOmega func(w []float64) []float64
	pth      func(h int) []float64
	prfFn    func(omega prf.WeightFunc) []float64
	erank    func() []float64
	combo    func(terms []prf.ExpTerm) []complex128
}

func conformanceBackends(t *testing.T) []conformance {
	t.Helper()
	const n = 120
	d := datagen.IIPLike(n, 41)
	tree, err := datagen.SynXOR(n, 41)
	if err != nil {
		t.Fatal(err)
	}
	chain := datagen.MarkovChainLike(40, 41)
	net, err := chain.Network()
	if err != nil {
		t.Fatal(err)
	}
	netEng, err := prf.EngineForNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	preparedChain := junction.PrepareChain(chain)

	toTreeCombo := func(terms []prf.ExpTerm) (us, alphas []complex128) {
		us = make([]complex128, len(terms))
		alphas = make([]complex128, len(terms))
		for i, term := range terms {
			us[i], alphas[i] = term.U, term.Alpha
		}
		return us, alphas
	}
	return []conformance{
		{
			name:     "independent",
			eng:      prf.EngineFor(d),
			n:        d.Len(),
			prfe:     func(a complex128) []complex128 { return prf.PRFe(d, a) },
			rankPRFe: func(a float64) prf.Ranking { return prf.RankPRFe(d, a) },
			prfOmega: func(w []float64) []float64 { return prf.PRFOmega(d, w) },
			pth:      func(h int) []float64 { return prf.PTh(d, h) },
			prfFn:    func(omega prf.WeightFunc) []float64 { return prf.PRF(d, omega) },
			erank:    func() []float64 { return prf.ERank(d) },
			combo:    func(terms []prf.ExpTerm) []complex128 { return prf.PRFeCombo(d, terms) },
		},
		{
			name:     "tree",
			eng:      prf.EngineForTree(tree),
			n:        tree.Len(),
			prfe:     func(a complex128) []complex128 { return prf.TreePRFe(tree, a) },
			rankPRFe: func(a float64) prf.Ranking { return prf.TreeRankPRFe(tree, a) },
			prfOmega: func(w []float64) []float64 { return prf.TreePRFOmega(tree, w) },
			pth:      func(h int) []float64 { return prf.TreePTh(tree, h) },
			prfFn: func(omega prf.WeightFunc) []float64 {
				return prf.TreePRF(tree, omega)
			},
			erank: func() []float64 { return prf.TreeExpectedRanks(tree) },
			combo: func(terms []prf.ExpTerm) []complex128 {
				us, alphas := toTreeCombo(terms)
				return prf.TreePRFeCombo(tree, us, alphas)
			},
		},
		{
			name: "network",
			eng:  netEng,
			n:    net.Len(),
			prfe: func(a complex128) []complex128 {
				vals, err := prf.NetworkPRFe(net, a)
				if err != nil {
					t.Fatal(err)
				}
				return vals
			},
			rankPRFe: func(a float64) prf.Ranking {
				pn, err := junction.PrepareNetwork(net)
				if err != nil {
					t.Fatal(err)
				}
				return pn.RankPRFe(a)
			},
			prfFn: func(omega prf.WeightFunc) []float64 {
				vals, err := prf.NetworkPRF(net, omega)
				if err != nil {
					t.Fatal(err)
				}
				return vals
			},
			erank: func() []float64 {
				vals, err := prf.NetworkExpectedRanks(net)
				if err != nil {
					t.Fatal(err)
				}
				return vals
			},
		},
		{
			name: "chain",
			eng:  prf.EngineForChain(chain),
			n:    chain.Len(),
			prfe: func(a complex128) []complex128 { return junction.PRFeChain(chain, a) },
			rankPRFe: func(a float64) prf.Ranking {
				return preparedChain.RankPRFe(a)
			},
		},
	}
}

var conformanceTerms = []prf.ExpTerm{
	{U: 1, Alpha: complex(0.9, 0)},
	{U: complex(0.5, 0.2), Alpha: complex(0.6, 0.1)},
	{U: complex(-0.3, 0), Alpha: complex(0.4, 0)},
}

func TestEngineConformance(t *testing.T) {
	grids := map[string][]float64{
		"monotone":    {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95, 1.0},
		"nonmonotone": {0.9, 0.1, 0.5, 0.5, 0.2},
	}
	for _, b := range conformanceBackends(t) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel() // engines share nothing; -race covers concurrent use
			ctx := context.Background()

			t.Run("prfe-values", func(t *testing.T) {
				t.Parallel()
				for _, alpha := range []float64{0.1, 0.5, 0.95, 1.0} {
					res, err := b.eng.Rank(ctx, prf.Query{Metric: prf.MetricPRFe, Alpha: alpha})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(res.Complex, b.prfe(complex(alpha, 0))) {
						t.Fatalf("PRFe values diverge from legacy at α=%v", alpha)
					}
				}
			})

			t.Run("prfe-rankings", func(t *testing.T) {
				t.Parallel()
				for _, alpha := range []float64{0.1, 0.5, 0.95, 1.0} {
					res, err := b.eng.Rank(ctx, prf.Query{
						Metric: prf.MetricPRFe, Alpha: alpha, Output: prf.OutputRanking,
					})
					if err != nil {
						t.Fatal(err)
					}
					want := b.rankPRFe(alpha)
					if !reflect.DeepEqual(res.Ranking, want) {
						t.Fatalf("PRFe ranking diverges from legacy at α=%v", alpha)
					}
					top, err := b.eng.Rank(ctx, prf.Query{
						Metric: prf.MetricPRFe, Alpha: alpha, Output: prf.OutputTopK, K: 7,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(top.Ranking, want.TopK(7)) {
						t.Fatalf("PRFe top-k diverges from legacy at α=%v", alpha)
					}
				}
			})

			t.Run("prfe-batches", func(t *testing.T) {
				t.Parallel()
				for gname, grid := range grids {
					batch, err := b.eng.RankBatch(ctx, prf.Query{
						Metric: prf.MetricPRFe, Alphas: grid, Output: prf.OutputRanking,
					})
					if err != nil {
						t.Fatal(err)
					}
					for a, alpha := range grid {
						if !reflect.DeepEqual(batch[a].Ranking, b.rankPRFe(alpha)) {
							t.Fatalf("%s batch ranking diverges at α=%v", gname, alpha)
						}
					}
					tops, err := b.eng.RankBatch(ctx, prf.Query{
						Metric: prf.MetricPRFe, Alphas: grid, Output: prf.OutputTopK, K: 9,
					})
					if err != nil {
						t.Fatal(err)
					}
					for a, alpha := range grid {
						if !reflect.DeepEqual(tops[a].Ranking, b.rankPRFe(alpha).TopK(9)) {
							t.Fatalf("%s batch top-k diverges at α=%v", gname, alpha)
						}
					}
					vals, err := b.eng.RankBatch(ctx, prf.Query{
						Metric: prf.MetricPRFe, Alphas: grid, Output: prf.OutputValues,
					})
					if err != nil {
						t.Fatal(err)
					}
					for a, alpha := range grid {
						if !reflect.DeepEqual(vals[a].Complex, b.prfe(complex(alpha, 0))) {
							t.Fatalf("%s batch values diverge at α=%v", gname, alpha)
						}
					}
				}
			})

			t.Run("omega-family", func(t *testing.T) {
				t.Parallel()
				w := make([]float64, 20)
				for i := range w {
					w[i] = 1 / float64(i+1)
				}
				if b.prfOmega != nil {
					res, err := b.eng.Rank(ctx, prf.Query{Metric: prf.MetricPRFOmega, Weights: w})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(res.Values, b.prfOmega(w)) {
						t.Fatal("PRFω values diverge from legacy")
					}
				}
				if b.pth != nil {
					res, err := b.eng.Rank(ctx, prf.Query{Metric: prf.MetricPTh, H: 10})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(res.Values, b.pth(10)) {
						t.Fatal("PT(h) values diverge from legacy")
					}
				}
				if b.prfFn != nil {
					omega := func(tu prf.Tuple, rank int) float64 {
						return tu.Prob / float64(rank)
					}
					res, err := b.eng.Rank(ctx, prf.Query{Metric: prf.MetricPRF, Omega: omega})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(res.Values, b.prfFn(omega)) {
						t.Fatal("PRF values diverge from legacy")
					}
				}
				if b.erank != nil {
					res, err := b.eng.Rank(ctx, prf.Query{Metric: prf.MetricERank, Output: prf.OutputRanking})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(res.Ranking, prf.ERankRanking(b.erank())) {
						t.Fatal("E-Rank ranking diverges from legacy")
					}
				}
			})

			t.Run("combo", func(t *testing.T) {
				t.Parallel()
				if b.combo == nil {
					return
				}
				res, err := b.eng.Rank(ctx, prf.Query{Metric: prf.MetricPRFeCombo, Terms: conformanceTerms})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Complex, b.combo(conformanceTerms)) {
					t.Fatal("PRFe-combo values diverge from legacy")
				}
				rk, err := b.eng.Rank(ctx, prf.Query{
					Metric: prf.MetricPRFeCombo, Terms: conformanceTerms, Output: prf.OutputRanking,
				})
				if err != nil {
					t.Fatal(err)
				}
				want := prf.RankByValue(prf.RealParts(b.combo(conformanceTerms)))
				if !reflect.DeepEqual(rk.Ranking, want) {
					t.Fatal("PRFe-combo ranking diverges from the real-part convention")
				}
			})
		})
	}
}

// TestChainOmegaFamilyAgainstNetwork cross-checks the chain backend's new
// ω-based capabilities (which fold the chain's own Θ(n³) rank-distribution
// DP) against the junction-tree backend on the equivalent network — two
// independent DP implementations that must agree to numerical precision.
func TestChainOmegaFamilyAgainstNetwork(t *testing.T) {
	chain := datagen.MarkovChainLike(28, 5)
	net, err := chain.Network()
	if err != nil {
		t.Fatal(err)
	}
	netEng, err := prf.EngineForNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	chainEng := prf.EngineForChain(chain)
	ctx := context.Background()

	queries := []prf.Query{
		{Metric: prf.MetricPTh, H: 5},
		{Metric: prf.MetricPRFOmega, Weights: []float64{1, 0.5, 0.25, 0.125}},
		{Metric: prf.MetricERank},
	}
	for _, q := range queries {
		cRes, err := chainEng.Rank(ctx, q)
		if err != nil {
			t.Fatalf("%v on chain: %v", q.Metric, err)
		}
		nRes, err := netEng.Rank(ctx, q)
		if err != nil {
			t.Fatalf("%v on network: %v", q.Metric, err)
		}
		for i := range cRes.Values {
			if math.Abs(cRes.Values[i]-nRes.Values[i]) > 1e-9 {
				t.Fatalf("%v: chain and network disagree at tuple %d: %v vs %v",
					q.Metric, i, cRes.Values[i], nRes.Values[i])
			}
		}
	}
}

// TestEngineBatchConcurrent hammers every backend with concurrent batch
// queries over one shared engine — the -race certificate for the pooled
// evaluation states behind the unified API.
func TestEngineBatchConcurrent(t *testing.T) {
	grid := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	for _, b := range conformanceBackends(t) {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			want, err := b.eng.RankBatch(context.Background(), prf.Query{
				Metric: prf.MetricPRFe, Alphas: grid, Output: prf.OutputRanking,
			})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 8)
			for g := 0; g < 8; g++ {
				go func() {
					got, err := b.eng.RankBatch(context.Background(), prf.Query{
						Metric: prf.MetricPRFe, Alphas: grid, Output: prf.OutputRanking,
					})
					if err == nil && !reflect.DeepEqual(got, want) {
						err = errConcurrentMismatch
					}
					done <- err
				}()
			}
			for g := 0; g < 8; g++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

var errConcurrentMismatch = errConst("concurrent batch diverged from serial answer")

type errConst string

func (e errConst) Error() string { return string(e) }
