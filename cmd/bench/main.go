// Command bench runs the repeated-query benchmark suite behind the
// prepared-evaluation engine and emits a machine-readable BENCH_N.json, so
// the repository's performance trajectory is recorded PR over PR.
//
// Usage:
//
//	bench [-out BENCH_8.json] [-n 10000] [-grid 16] [-terms 20]
//	bench -smoke                      # run every workload once, tiny sizes
//	bench -smoke -out ci.json         # quick-measured smoke report
//	bench -diff OLD.json NEW.json     # regression gate (scripts/benchdiff.sh)
//	bench -load-conc 32 -load-dur 2s  # size the load-generator arm
//	bench -sharded-n 100000           # size the multi-core trajectory arms
//
// The workload bodies are shared with the root bench_test.go suite via
// internal/benchwork, so the JSON records exactly what `go test -bench`
// measures:
//
//   - spectrum: PRFeLog at every point of an α grid (the Figure 11 kernel),
//     one-shot (rebuild + re-sort per query) vs prepared (sort once) vs
//     parallel batch;
//   - ranked-spectrum: the same sweep producing full rankings — one-shot vs
//     prepared (re-sort per α) vs parallel vs the kinetic sweep (sort once,
//     advance by Theorem 4 adjacent-pair crossings);
//   - crossing: the Theorem 4 crossing-point solver, incremental
//     Newton/secant vs the bisection reference, over mixed-span pairs;
//   - combo: an L-term PRFe linear combination (the Figure 8 kernel),
//     multi-pass (one scan per term) vs fused single-pass vs parallel-by-term
//     vs one-shot (prepare per call);
//   - correlated: PRFe, α sweeps and PRFe combinations on and/xor trees
//     (Syn-XOR x-tuples and Syn-HIGH deep correlation), the Section 9.3
//     Markov chain (product-tree prepared path vs the Θ(n³) partial-sum DP)
//     and the Section 9.4 junction tree (prepared vs one-shot);
//   - engine: the unified Ranker engine (PR 4). ONE generic sweep body runs
//     against all four backends through Engine.RankBatch dispatch; the
//     `engine * overhead` entries certify dispatch cost (≤ 5%);
//   - engine/cached: the PR 5 engine-level result cache on the
//     repeated-dashboard workload (a panel mix re-issued per refresh) —
//     cached refreshes must be ≥ 5x the uncached engine;
//   - serve: HTTP round trips through the internal/serve front end — the
//     uncached path, the engine-cache-only path, the full wire path
//     (encoded-byte cache, one Write per hot hit), the gzip-negotiated and
//     streamed variants, and a cold-storm pair measuring the single-flight
//     latch (wall time for N identical cold requests, latch on vs off);
//   - load: a vegeta-style closed-loop load generator (QPS, p50/p95/p99
//     latency, allocated bytes per request under -load-conc concurrent
//     clients for -load-dur) against the in-process fixture or -load-addr —
//     a scalar mix and a Parallelism-knob mix, each recording its effective
//     per-request parallelism;
//   - sharded (PR 7): the shard-parallel kernels — the fused PT(h) ladder
//     (every rung from one generating-function pass) per-h vs fused vs
//     sharded, the lane-split log-domain PRFe kernel vs its scalar
//     reference, prefix-resumed ERank shards, the Query.Parallelism engine
//     sweep and the Section 5.2 α-learning loop. The same arms run again at
//     forced GOMAXPROCS ∈ {1, 4, NumCPU} over an n=-sharded-n dataset — the
//     multi-core trajectory sections ("multicore" in the JSON), whose
//     headline is the sharded ladder at full parallelism against the per-h
//     scalar baseline at one core. Every result records the GOMAXPROCS and
//     shard parallelism it ran at, and -diff hard-compares only
//     like-parallelism entries.
//
// Modes beyond the full measured run:
//
//   - -smoke runs every workload body exactly once at tiny sizes and writes
//     no file — the CI guard that keeps the workloads compiling and running.
//     With -out it instead quick-measures each workload (short timed loops)
//     and writes a smoke-sized report for the regression gate.
//   - -diff compares two reports: dimensionless speedup ratios are the
//     gated signal (same-machine, same-size internal ratios — they survive
//     machine and size changes between reports), with warnings at
//     -warn-ratio and a non-zero exit beyond -fail-ratio; absolute timings
//     are compared warn-only and only between same-size reports. Keys
//     containing "overhead" are lower-is-better and gate inverted. The full
//     run embeds a quick-measured smoke section precisely so later -diff
//     runs compare smoke against smoke, size-for-size.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/benchwork"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/store"
)

// Result is one measured benchmark case. GOMAXPROCS and Parallelism record
// the effective concurrency the arm ran at — the runtime cap and the shard
// worker count (0 = the scalar path) — so the regression gate can refuse to
// hard-compare entries measured at different parallelism.
type Result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	MsPerOp     float64 `json:"ms_per_op"`
	AllocsOp    int64   `json:"allocs_per_op"`
	BytesOp     int64   `json:"bytes_per_op"`
	GOMAXPROCS  int     `json:"gomaxprocs,omitempty"`
	Parallelism int     `json:"parallelism,omitempty"`
}

// Section is one measured run of the whole suite at one size
// configuration. GOMAXPROCS and NumCPU are recorded so the regression gate
// only hard-compares like-for-like runs — concurrency-sensitive arms (the
// parallel sweeps, the single-flight storm) shift with core count.
type Section struct {
	N          int                `json:"dataset_size"`
	GridPoints int                `json:"spectrum_grid_points"`
	ComboTerms int                `json:"combo_terms"`
	ChainN     int                `json:"chain_length"`
	GOMAXPROCS int                `json:"gomaxprocs,omitempty"`
	NumCPU     int                `json:"num_cpu,omitempty"`
	Results    []Result           `json:"results"`
	Speedups   map[string]float64 `json:"speedups"`
}

// Report is the full BENCH_N.json payload: the full-size section inline
// (compatible with earlier BENCH files) plus a quick-measured smoke-size
// section for the size-for-size regression gate.
type Report struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu,omitempty"`
	N          int                `json:"dataset_size"`
	GridPoints int                `json:"spectrum_grid_points"`
	ComboTerms int                `json:"combo_terms"`
	ChainN     int                `json:"chain_length"`
	Results    []Result           `json:"results"`
	Speedups   map[string]float64 `json:"speedups"`
	Load       *LoadReport        `json:"load,omitempty"`
	// Multicore holds the sharded-kernel trajectory: the same arm set run
	// at forced GOMAXPROCS settings (one section per setting) over the
	// -sharded-n dataset, recording speedup-vs-cores.
	Multicore []Section `json:"multicore,omitempty"`
	// Store holds the persistent-store arms re-run at -store-n (the
	// cold-open acceptance size), separate from the full-size section.
	Store *Section `json:"store,omitempty"`
	Smoke *Section `json:"smoke,omitempty"`
}

// LoadReport is the load-generator block of the report: the hot dashboard
// mix driven at -load-conc concurrency for -load-dur, in a scalar arm and a
// Parallelism-knob arm. Each arm records the effective per-request shard
// parallelism it asked for (0 = the scalar path), not just the
// process-wide GOMAXPROCS.
type LoadReport struct {
	Addr              string               `json:"addr"`
	Concurrency       int                  `json:"concurrency"`
	GOMAXPROCS        int                  `json:"gomaxprocs,omitempty"`
	HotMix            benchwork.LoadResult `json:"hot_mix"`
	HotMixParallelism int                  `json:"hot_mix_parallelism"`
	// ParallelMix is the same dashboard mix with the wire-level parallelism
	// knob set on every request (the server clamps it to its own cap).
	ParallelMix            benchwork.LoadResult `json:"parallel_mix"`
	ParallelMixParallelism int                  `json:"parallel_mix_parallelism"`
}

// measureFunc turns one workload body into a measurement; nil means smoke
// mode (run once, no timing).
type measureFunc func(name string, op func()) Result

// fullMeasure is the stdlib benchmark harness (≈1 s per workload).
func fullMeasure(name string, op func()) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	return Result{
		Name:     name,
		Iters:    r.N,
		NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
		MsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N) / 1e6,
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
	}
}

// quickMeasure is the short harness behind the smoke report: one warm-up
// run, then timed iterations until ~150 ms have elapsed. Coarser than
// fullMeasure but cheap enough to run the whole suite per CI job; the
// regression gate's tolerances account for the extra noise.
func quickMeasure(name string, op func()) Result {
	op() // warm-up, excluded
	const budget = 150 * time.Millisecond
	var iters int
	start := time.Now()
	for time.Since(start) < budget {
		op()
		iters++
	}
	ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
	return Result{Name: name, Iters: iters, NsPerOp: ns, MsPerOp: ns / 1e6}
}

// runSuite builds every workload at the given sizes and measures (or, with
// a nil measure, just runs) each one.
func runSuite(n, grid, terms, chainN int, meas measureFunc) Section {
	sec := Section{N: n, GridPoints: grid, ComboTerms: terms, ChainN: chainN,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Speedups: map[string]float64{}}
	// addPar measures one arm and stamps the concurrency it ran at: the
	// live GOMAXPROCS plus the arm's shard parallelism (0 = scalar path) —
	// the like-parallelism identity the -diff gate keys on.
	addPar := func(name string, par int, op func()) Result {
		if meas == nil {
			op()
			fmt.Printf("%-44s ok\n", name)
			return Result{Name: name}
		}
		r := meas(name, op)
		r.GOMAXPROCS = runtime.GOMAXPROCS(0)
		r.Parallelism = par
		sec.Results = append(sec.Results, r)
		fmt.Printf("%-44s %12.3f ms/op  (%d iters, %d allocs/op)\n",
			r.Name, r.MsPerOp, r.Iters, r.AllocsOp)
		return r
	}
	add := func(name string, op func()) Result { return addPar(name, 0, op) }

	d := benchwork.Dataset(n)
	alphas, calphas := benchwork.Grid(grid)
	expTerms := benchwork.Terms(terms)
	v := core.Prepare(d)
	pairs := benchwork.CrossingPairs(n, 64)
	xorTree := benchwork.XTupleTree(n)
	deepTree := benchwork.DeepTree(n)
	chain := benchwork.MarkovChain(chainN)
	// The one-shot junction arm re-triangulates and re-runs the Θ(n³) DP per
	// grid point, so the generic-network sweep runs on a shorter chain and a
	// sub-grid to keep the suite's wall clock sane.
	netN := chainN / 2
	if netN < 2 {
		netN = 2
	}
	net := benchwork.ChainNetwork(benchwork.MarkovChain(netN))
	netGrid := grid / 2
	if netGrid < 1 {
		netGrid = 1
	}
	_, netCalphas := benchwork.Grid(netGrid)

	spOne := add("spectrum/oneshot", func() { benchwork.SpectrumOneShot(d, calphas) })
	spPrep := add("spectrum/prepared", func() { benchwork.SpectrumPrepared(d, calphas) })
	spPar := add("spectrum/parallel", func() { benchwork.SpectrumParallel(d, calphas) })

	rkOne := add("ranked-spectrum/oneshot", func() { benchwork.RankedOneShot(d, alphas) })
	rkPrep := add("ranked-spectrum/prepared", func() { benchwork.RankedPrepared(d, alphas) })
	rkPar := add("ranked-spectrum/parallel", func() { benchwork.RankedParallel(d, alphas) })
	rkKin := add("ranked-spectrum/kinetic", func() { benchwork.RankedKinetic(d, alphas) })

	crRef := add("crossing/reference", func() { benchwork.CrossingReference(v, pairs) })
	crInc := add("crossing/incremental", func() { benchwork.CrossingIncremental(v, pairs) })

	cbMulti := add("combo/multipass", func() { benchwork.ComboMultiPass(v, expTerms) })
	cbFused := add("combo/fused", func() { benchwork.ComboFused(v, expTerms) })
	cbPar := add("combo/parallel", func() { benchwork.ComboParallel(v, expTerms) })
	cbOne := add("combo/oneshot", func() { benchwork.ComboOneShot(d, expTerms) })

	add("correlated/andxor-xor-prfe", func() { benchwork.TreePRFe(xorTree) })
	add("correlated/andxor-high-prfe", func() { benchwork.TreePRFe(deepTree) })
	axSwOne := add("correlated/andxor-xor-sweep-oneshot", func() { benchwork.TreeSweepOneShot(xorTree, calphas) })
	axSwPrep := add("correlated/prepared/andxor-xor-sweep", func() { benchwork.TreeSweepPrepared(xorTree, calphas) })
	hiSwOne := add("correlated/andxor-high-sweep-oneshot", func() { benchwork.TreeSweepOneShot(deepTree, calphas) })
	hiSwPrep := add("correlated/prepared/andxor-high-sweep", func() { benchwork.TreeSweepPrepared(deepTree, calphas) })
	axCbOne := add("correlated/andxor-xor-combo", func() { benchwork.TreeCombo(xorTree, expTerms) })
	preparedXorTree := benchwork.PrepareTree(xorTree)
	axCbPrep := add("correlated/prepared/andxor-xor-combo", func() { benchwork.TreeComboPrepared(preparedXorTree, expTerms) })

	chDP := add("correlated/junction-chain-prfe-dp", func() { benchwork.ChainPRFeDP(chain) })
	chFast := add("correlated/junction-chain-prfe", func() { benchwork.ChainPRFe(chain) })
	chSweep := add("correlated/prepared/chain-sweep", func() { benchwork.ChainSweepPrepared(chain, calphas) })
	netOne := add("correlated/junction-network-sweep-oneshot", func() { benchwork.NetworkSweepOneShot(net, netCalphas) })
	netPrep := add("correlated/prepared/network-sweep", func() { benchwork.NetworkSweepPrepared(net, netCalphas) })

	// Unified-engine arms: one generic sweep body, four backends. The
	// independent arms pair engine dispatch against the direct prepared
	// calls; preparation is hoisted on both sides so the pairs measure
	// exactly the dispatch overhead.
	netAlphas := make([]float64, len(netCalphas))
	for i, ca := range netCalphas {
		netAlphas[i] = real(ca)
	}
	engIndep := benchwork.NewEngine(v)
	engTree := benchwork.NewEngine(preparedXorTree)
	engChain := benchwork.NewEngine(benchwork.PrepareChain(chain))
	engNet := benchwork.NewEngine(benchwork.PrepareNetwork(net))
	dirRank := add("engine/direct-rank-sweep", func() { benchwork.DirectRankSweep(v, alphas) })
	engRank := add("engine/rank-sweep", func() { benchwork.EngineRankSweep(engIndep, alphas) })
	dirTopK := add("engine/direct-topk-sweep", func() { benchwork.DirectTopKSweep(v, alphas, 10) })
	engTopK := add("engine/topk-sweep", func() { benchwork.EngineTopKSweep(engIndep, alphas, 10) })
	add("engine/tree-rank-sweep", func() { benchwork.EngineRankSweep(engTree, alphas) })
	add("engine/chain-rank-sweep", func() { benchwork.EngineRankSweep(engChain, alphas) })
	add("engine/network-rank-sweep", func() { benchwork.EngineRankSweep(engNet, netAlphas) })
	add("engine/tree-value-sweep", func() { benchwork.EngineValueSweep(engTree, alphas) })

	// Consensus-semantics arms (PR 8): the Global-Topk, Expected-Rank and
	// Median-Rank metrics promoted to first-class engine dispatch, scalar
	// and (for the sharded Expected-Rank kernel) at full parallelism.
	semPar := runtime.GOMAXPROCS(0)
	add("semantics/globaltopk-ranking", func() {
		benchwork.EngineSemanticRanking(engIndep, engine.MetricGlobalTopk, 10, 0)
	})
	xrScalar := add("semantics/expectedrank-ranking", func() {
		benchwork.EngineSemanticRanking(engIndep, engine.MetricExpectedRank, 10, 0)
	})
	xrShard := addPar("semantics/expectedrank-ranking-parallel", semPar, func() {
		benchwork.EngineSemanticRanking(engIndep, engine.MetricExpectedRank, 10, semPar)
	})
	add("semantics/medianrank-ranking", func() {
		benchwork.EngineSemanticRanking(engIndep, engine.MetricMedianRank, 10, 0)
	})

	// Engine-level cache arms (PR 5): one dashboard refresh = the panel mix
	// plus the ranked sweep. The cached engine is warmed before measurement
	// so ops measure steady-state hits (the realistic repeated-dashboard
	// regime); correctness of warm answers is certified in cache_test.go.
	dashQs := benchwork.DashboardQueries(10)
	dashSweep := benchwork.DashboardSweep(grid)
	cachedEng := benchwork.NewCachedEngine(engIndep, 0)
	benchwork.CachedDashboard(cachedEng, dashQs, dashSweep) // warm
	dashUn := add("engine/dashboard", func() { benchwork.EngineDashboard(engIndep, dashQs, dashSweep) })
	dashHot := add("engine/cached/dashboard", func() { benchwork.CachedDashboard(cachedEng, dashQs, dashSweep) })

	// Sharded-kernel arms (PR 7), at the live GOMAXPROCS: the fused PT(h)
	// ladder against the per-h scalar reference, the lane-split log-domain
	// PRFe kernel, prefix-resumed ERank shards, the Query.Parallelism engine
	// sweep and the Section 5.2 α-learning loop. The same kernel set re-runs
	// at forced GOMAXPROCS settings in the multicore trajectory sections.
	par := runtime.GOMAXPROCS(0)
	hs := benchwork.Ladder(10, 10)
	ldPerH := add("sharded/pth-ladder-perh", func() { benchwork.LadderPerH(v, hs) })
	ldFused := addPar("sharded/pth-ladder-fused", 1, func() { benchwork.LadderFused(v, hs) })
	ldShard := addPar("sharded/pth-ladder", par, func() { benchwork.LadderSharded(v, hs, par) })
	lgScalar := add("sharded/prfelog-scalar", func() { benchwork.PRFeLogScalar(v, complex(0.95, 0)) })
	lgLanes := addPar("sharded/prfelog-lanes", par, func() { benchwork.PRFeLogLanes(v, complex(0.95, 0), par) })
	erScalar := add("sharded/erank-scalar", func() { benchwork.ERankScalar(v) })
	erShard := addPar("sharded/erank", par, func() { benchwork.ERankShards(v, par) })
	engPar := addPar("engine/parallel-rank-sweep", par, func() { benchwork.EngineParallelSweep(engIndep, alphas, par) })
	learnUser := benchwork.LearnUserRanking(v)
	add("learn/alpha-fit", func() { benchwork.LearnAlphaWorkload(v, learnUser, 10, 3) })

	// Serving-layer arms: full HTTP round trips against the in-process
	// front end. Three cache configurations isolate the layers: no caches,
	// engine-level result cache only (a hit still re-encodes the body), and
	// the full wire path (byte cache: a hit is one Write of pre-encoded
	// bytes). Plus the gzip-negotiated and streamed variants of the sweep.
	serveEngines := func() map[string]*engine.Engine {
		return map[string]*engine.Engine{"bench": benchwork.NewEngine(v)}
	}
	uncachedSrv := benchwork.StartServeFixtureOpts(serveEngines(),
		serve.Options{CacheCapacity: -1, ByteCacheCapacity: -1})
	defer uncachedSrv.Close()
	engCacheSrv := benchwork.StartServeFixtureOpts(serveEngines(),
		serve.Options{CacheCapacity: 0, ByteCacheCapacity: -1})
	defer engCacheSrv.Close()
	cachedSrv := benchwork.StartServeFixture(serveEngines(), 0) // full wire path
	defer cachedSrv.Close()
	client := &http.Client{}
	rankBody := benchwork.ServeRankBody("bench", 0.95, 10)
	batchBody := benchwork.ServeBatchBody("bench", grid)
	streamBody := benchwork.ServeBatchStreamBody("bench", grid)
	for _, srv := range []string{engCacheSrv.URL, cachedSrv.URL} { // warm
		benchwork.ServeRoundTrip(client, srv+"/rank", rankBody)
		benchwork.ServeRoundTrip(client, srv+"/rankbatch", batchBody)
	}
	benchwork.ServeRoundTripGzip(client, cachedSrv.URL+"/rankbatch", batchBody) // warm the gzip variant
	srvUn := add("serve/rank-topk", func() { benchwork.ServeRoundTrip(client, uncachedSrv.URL+"/rank", rankBody) })
	srvHot := add("serve/cached/rank-topk", func() { benchwork.ServeRoundTrip(client, cachedSrv.URL+"/rank", rankBody) })
	srvBatchUn := add("serve/rankbatch-sweep", func() { benchwork.ServeRoundTrip(client, uncachedSrv.URL+"/rankbatch", batchBody) })
	srvBatchEng := add("serve/enginecache/rankbatch-sweep", func() { benchwork.ServeRoundTrip(client, engCacheSrv.URL+"/rankbatch", batchBody) })
	srvBatchHot := add("serve/cached/rankbatch-sweep", func() { benchwork.ServeRoundTrip(client, cachedSrv.URL+"/rankbatch", batchBody) })
	srvBatchGz := add("serve/cached/rankbatch-sweep-gzip", func() { benchwork.ServeRoundTripGzip(client, cachedSrv.URL+"/rankbatch", batchBody) })
	add("serve/rankbatch-stream", func() { benchwork.ServeRoundTrip(client, uncachedSrv.URL+"/rankbatch", streamBody) })

	// Persistent-store arms (PR 10): the disk-backed segment path against
	// the CSV text path it replaces. Cold-open decodes a segment and fully
	// materializes the sorted view; the cold top-k arm answers through the
	// certified partial-materialization path, reading only a prefix.
	runStoreArms(n, add, sec.Speedups, meas != nil, "")

	// Cold-storm pair: wall time for rounds × conc identical never-seen
	// requests, wire-layer single-flight on vs off. Wall-time measured (not
	// ns/op): the latch's value is what N callers experience together. The
	// no-latch fixture disables the whole byte layer (cache AND latch), not
	// just the latch: a byte cache without a latch still absorbs most of a
	// storm on a small machine by racy fill (whoever encodes first wins),
	// which would measure the race, not the layer. The engine-level flight
	// stays on in both, so the ratio isolates the wire layer: one
	// encode+compress per round versus one per caller.
	stormConc, stormRounds := 32, 4
	if meas == nil || n <= 1000 {
		stormConc, stormRounds = 8, 2
	}
	stormLatch := benchwork.StartServeFixture(serveEngines(), 0)
	defer stormLatch.Close()
	stormNoLatch := benchwork.StartServeFixtureOpts(serveEngines(),
		serve.Options{CacheCapacity: 0, ByteCacheCapacity: -1, DisableSingleFlight: true})
	defer stormNoLatch.Close()
	stormBody := func(round int) []byte { return benchwork.ServeBatchStormBody("bench", grid, round) }
	latchTime := benchwork.ColdStorm(stormLatch.URL+"/rankbatch", stormConc, stormRounds, stormBody)
	noLatchTime := benchwork.ColdStorm(stormNoLatch.URL+"/rankbatch", stormConc, stormRounds, stormBody)
	fmt.Printf("%-44s %12.3f ms wall (%d×%d requests, latch on)\n",
		"serve/cold-storm/single-flight", float64(latchTime.Nanoseconds())/1e6, stormRounds, stormConc)
	fmt.Printf("%-44s %12.3f ms wall (%d×%d requests, latch off)\n",
		"serve/cold-storm/no-latch", float64(noLatchTime.Nanoseconds())/1e6, stormRounds, stormConc)

	if meas == nil {
		return sec
	}

	sec.Speedups["spectrum prepared vs oneshot"] = spOne.NsPerOp / spPrep.NsPerOp
	sec.Speedups["spectrum parallel vs oneshot"] = spOne.NsPerOp / spPar.NsPerOp
	sec.Speedups["ranked spectrum prepared vs oneshot"] = rkOne.NsPerOp / rkPrep.NsPerOp
	sec.Speedups["ranked spectrum parallel vs oneshot"] = rkOne.NsPerOp / rkPar.NsPerOp
	sec.Speedups["ranked spectrum kinetic vs oneshot"] = rkOne.NsPerOp / rkKin.NsPerOp
	sec.Speedups["ranked spectrum kinetic vs prepared"] = rkPrep.NsPerOp / rkKin.NsPerOp
	sec.Speedups["crossing incremental vs reference"] = crRef.NsPerOp / crInc.NsPerOp
	sec.Speedups["combo fused vs multipass"] = cbMulti.NsPerOp / cbFused.NsPerOp
	sec.Speedups["combo fused vs oneshot"] = cbOne.NsPerOp / cbFused.NsPerOp
	sec.Speedups["combo parallel vs multipass"] = cbMulti.NsPerOp / cbPar.NsPerOp
	sec.Speedups["andxor xor sweep prepared vs oneshot"] = axSwOne.NsPerOp / axSwPrep.NsPerOp
	sec.Speedups["andxor high sweep prepared vs oneshot"] = hiSwOne.NsPerOp / hiSwPrep.NsPerOp
	sec.Speedups["andxor combo prepared vs oneshot"] = axCbOne.NsPerOp / axCbPrep.NsPerOp
	sec.Speedups["chain prfe product-tree vs DP"] = chDP.NsPerOp / chFast.NsPerOp
	sec.Speedups["chain sweep prepared vs per-query DP"] =
		chDP.NsPerOp * float64(grid) / chSweep.NsPerOp
	sec.Speedups["network sweep prepared vs oneshot"] = netOne.NsPerOp / netPrep.NsPerOp
	// Dispatch-overhead ratios (engine time / direct time): the api_redesign
	// acceptance criterion is ≤ 1.05 on the ranked and top-k α-sweep pairs.
	sec.Speedups["engine rank sweep overhead (engine/direct)"] = engRank.NsPerOp / dirRank.NsPerOp
	sec.Speedups["engine topk sweep overhead (engine/direct)"] = engTopK.NsPerOp / dirTopK.NsPerOp
	// Cache and serving headlines (PR 5): the ci acceptance criterion is
	// ≥ 5x on the cached dashboard.
	sec.Speedups["engine cached dashboard vs uncached"] = dashUn.NsPerOp / dashHot.NsPerOp
	sec.Speedups["serve cached rank vs uncached"] = srvUn.NsPerOp / srvHot.NsPerOp
	sec.Speedups["serve cached sweep vs uncached"] = srvBatchUn.NsPerOp / srvBatchHot.NsPerOp
	// Wire-path headlines (PR 6): the perf_opt acceptance criteria are a
	// ≥ 5x hot cached HTTP sweep vs the BENCH_5 serve/cached arm (the byte
	// cache skips the re-encode the engine cache still pays) and a ≥ 3x
	// single-flight win on the cold storm.
	sec.Speedups["serve byte-cache sweep vs engine-cache"] = srvBatchEng.NsPerOp / srvBatchHot.NsPerOp
	sec.Speedups["serve cached gzip sweep vs uncached"] = srvBatchUn.NsPerOp / srvBatchGz.NsPerOp
	// Sharded-kernel headlines (PR 7): the fused ladder answers every rung
	// from one pass; the sharded variants add per-shard prefix starts and
	// the lane-split log kernel.
	sec.Speedups["pth ladder fused vs per-h scalar"] = ldPerH.NsPerOp / ldFused.NsPerOp
	sec.Speedups["pth ladder sharded vs per-h scalar"] = ldPerH.NsPerOp / ldShard.NsPerOp
	sec.Speedups["prfe log lanes vs scalar"] = lgScalar.NsPerOp / lgLanes.NsPerOp
	sec.Speedups["erank sharded vs scalar"] = erScalar.NsPerOp / erShard.NsPerOp
	sec.Speedups["engine parallel sweep vs scalar sweep"] = engRank.NsPerOp / engPar.NsPerOp
	// Consensus-semantics headline (PR 8): the sharded Expected-Rank kernel
	// behind engine dispatch against its scalar path.
	sec.Speedups["semantics expectedrank parallel vs scalar"] = xrScalar.NsPerOp / xrShard.NsPerOp
	if n > 1000 {
		// At smoke sizes a cold evaluation is cheaper than an HTTP round
		// trip, so the storm ratio is connection noise — recording it
		// would hand the regression gate a coin flip. Full sizes only.
		sec.Speedups["serve cold-storm single-flight vs no-latch"] =
			float64(noLatchTime.Nanoseconds()) / float64(latchTime.Nanoseconds())
	}
	return sec
}

// runStoreArms registers the persistent-store workloads at size n: the CSV
// parse+prepare baseline (the path every load took before the store), the
// segment cold open (header + checksum-verified section reads + FromSorted,
// no text parsing, no sort), and the cold certified top-k (partial
// materialization: only a score-order prefix is read, the tail is bounded
// away). Speedup keys get keySuffix appended so the -store-n trajectory can
// coexist with the in-suite arms.
func runStoreArms(n int, add func(name string, op func()) Result,
	speedups map[string]float64, measured bool, keySuffix string) {
	d := benchwork.Dataset(n)
	var csv bytes.Buffer
	for _, t := range d.Tuples() {
		fmt.Fprintf(&csv, "%v,%v\n", t.Score, t.Prob)
	}
	ds, err := store.Parse(store.KindIndependent, bytes.NewReader(csv.Bytes()))
	if err != nil {
		panic(err) // fixture invariant: datagen output always parses
	}
	dir, err := os.MkdirTemp("", "prfbench-store-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		panic(err)
	}
	if _, err := st.Import("bench", ds); err != nil {
		panic(err)
	}
	ctx := context.Background()

	csvArm := add("store/csv-parse-prepare", func() {
		ds2, err := store.Parse(store.KindIndependent, bytes.NewReader(csv.Bytes()))
		if err != nil {
			panic(err)
		}
		if _, err := ds2.Engine(); err != nil {
			panic(err)
		}
	})
	coldArm := add("store/cold-open", func() {
		h, err := st.OpenHandle("bench")
		if err != nil {
			panic(err)
		}
		// Materialize owns and closes the handle.
		if _, err := store.NewLazy(h).Materialize(ctx); err != nil {
			panic(err)
		}
	})
	var readFraction float64 // file size over bytes read, from the last run
	topkArm := add("store/topk-cold-partial", func() {
		h, err := st.OpenHandle("bench")
		if err != nil {
			panic(err)
		}
		lz := store.NewLazy(h)
		if _, err := lz.QueryTopKPRFeBatch(ctx, []float64{0.95}, 10); err != nil {
			panic(err)
		}
		if br := lz.BytesRead(); br > 0 {
			readFraction = float64(h.SizeBytes()) / float64(br)
		}
		_ = h.Close() // already closed if the query fell back to a full load
	})
	if !measured {
		return
	}
	speedups["store cold-open vs csv parse+prepare"+keySuffix] = csvArm.NsPerOp / coldArm.NsPerOp
	speedups["store cold topk vs cold full open"+keySuffix] = coldArm.NsPerOp / topkArm.NsPerOp
	// o(n) evidence for the partial path: how many times over the top-k
	// query could have re-read the file with the bytes it did not touch.
	// ~1 when the dataset is too small for partial eligibility (the query
	// falls back to a full load), large when only a prefix was needed.
	speedups["store cold topk file bytes over bytes read"+keySuffix] = readFraction
}

// multicoreSettings returns the forced-GOMAXPROCS trajectory points
// {1, 4, NumCPU}, deduplicated and sorted — the speedup-vs-cores axis. On a
// single-core box the 4-way point still runs (oversubscribed), so the
// trajectory always exercises the cross-shard merge under real scheduling.
func multicoreSettings() []int {
	set := map[int]bool{1: true, 4: true, runtime.NumCPU(): true}
	out := make([]int, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// runMulticore measures the sharded kernel set at each forced GOMAXPROCS
// setting over an n-element dataset — one section per setting. The scalar
// baselines re-measure inside every section, so each section's speedups are
// internal (both sides ran at the same GOMAXPROCS); the cross-core
// headlines are assembled by multicoreHeadlines from the per-section
// results.
func runMulticore(n int, hs []int, meas measureFunc) []Section {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	v := core.Prepare(benchwork.Dataset(n))
	var sections []Section
	for _, gmp := range multicoreSettings() {
		runtime.GOMAXPROCS(gmp)
		fmt.Printf("\nmulticore trajectory: GOMAXPROCS=%d, n=%d, %d rungs\n", gmp, n, len(hs))
		sec := Section{N: n, GridPoints: len(hs), GOMAXPROCS: gmp,
			NumCPU: runtime.NumCPU(), Speedups: map[string]float64{}}
		add := func(name string, par int, op func()) Result {
			if meas == nil {
				op()
				fmt.Printf("%-44s ok\n", name)
				return Result{Name: name}
			}
			r := meas(name, op)
			r.GOMAXPROCS = gmp
			r.Parallelism = par
			sec.Results = append(sec.Results, r)
			fmt.Printf("%-44s %12.3f ms/op  (%d iters, %d allocs/op)\n",
				r.Name, r.MsPerOp, r.Iters, r.AllocsOp)
			return r
		}
		ldPerH := add("sharded/pth-ladder-perh", 0, func() { benchwork.LadderPerH(v, hs) })
		ldFused := add("sharded/pth-ladder-fused", 1, func() { benchwork.LadderFused(v, hs) })
		ldShard := add("sharded/pth-ladder", gmp, func() { benchwork.LadderSharded(v, hs, gmp) })
		lgScalar := add("sharded/prfelog-scalar", 0, func() { benchwork.PRFeLogScalar(v, complex(0.95, 0)) })
		lgLanes := add("sharded/prfelog-lanes", gmp, func() { benchwork.PRFeLogLanes(v, complex(0.95, 0), gmp) })
		erScalar := add("sharded/erank-scalar", 0, func() { benchwork.ERankScalar(v) })
		erShard := add("sharded/erank", gmp, func() { benchwork.ERankShards(v, gmp) })
		if meas != nil {
			sec.Speedups["pth ladder fused vs per-h scalar"] = ldPerH.NsPerOp / ldFused.NsPerOp
			sec.Speedups["pth ladder sharded vs per-h scalar"] = ldPerH.NsPerOp / ldShard.NsPerOp
			sec.Speedups["prfe log lanes vs scalar"] = lgScalar.NsPerOp / lgLanes.NsPerOp
			sec.Speedups["erank sharded vs scalar"] = erScalar.NsPerOp / erShard.NsPerOp
		}
		sections = append(sections, sec)
	}
	return sections
}

// multicoreHeadlines folds the trajectory into the report's speedup map:
// each sharded kernel at full parallelism (the NumCPU section) against its
// scalar baseline measured at GOMAXPROCS=1 — the headline the perf
// trajectory gates on.
func multicoreHeadlines(sections []Section, speedups map[string]float64) {
	find := func(gmp int, name string) float64 {
		for _, s := range sections {
			if s.GOMAXPROCS != gmp {
				continue
			}
			for _, r := range s.Results {
				if r.Name == name {
					return r.NsPerOp
				}
			}
		}
		return 0
	}
	top := runtime.NumCPU()
	for _, p := range []struct{ key, scalar, sharded string }{
		{"pth ladder sharded@numcpu vs per-h scalar@1", "sharded/pth-ladder-perh", "sharded/pth-ladder"},
		{"prfe log lanes@numcpu vs scalar@1", "sharded/prfelog-scalar", "sharded/prfelog-lanes"},
		{"erank sharded@numcpu vs scalar@1", "sharded/erank-scalar", "sharded/erank"},
	} {
		base := find(1, p.scalar)
		fast := find(top, p.sharded)
		if base > 0 && fast > 0 {
			speedups[p.key] = base / fast
		}
	}
}

func main() {
	var (
		out       = flag.String("out", "", "output JSON path (default BENCH_8.json; in -smoke mode: no file unless set)")
		n         = flag.Int("n", 10000, "dataset size")
		grid      = flag.Int("grid", 16, "α grid points for the spectrum sweeps")
		terms     = flag.Int("terms", 20, "terms in the PRFe combination")
		chainN    = flag.Int("chain", 200, "Markov-chain length (the DP arm is cubic: keep small)")
		smoke     = flag.Bool("smoke", false, "run every workload once at tiny sizes (with -out: quick-measure and write a report)")
		diff      = flag.Bool("diff", false, "compare two reports: bench -diff OLD.json NEW.json")
		warnRatio = flag.Float64("warn-ratio", 1.5, "-diff: annotate speedup regressions beyond this ratio")
		failRatio = flag.Float64("fail-ratio", 5, "-diff: exit non-zero on speedup regressions beyond this ratio")
		loadConc  = flag.Int("load-conc", 32, "load arm: concurrent clients")
		loadDur   = flag.Duration("load-dur", 2*time.Second, "load arm: run duration (0 disables the load arm)")
		loadAddr  = flag.String("load-addr", "", "load arm: external server base URL (default: in-process fixture)")
		shardedN  = flag.Int("sharded-n", 100000, "multi-core trajectory: dataset size for the sharded kernel arms (0 disables)")
		storeN    = flag.Int("store-n", 100000, "persistent-store trajectory: dataset size for the cold-open arms (0 disables)")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "bench: -diff needs exactly two report paths: bench -diff OLD.json NEW.json")
			os.Exit(2)
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1), *warnRatio, *failRatio); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}

	const smokeN, smokeGrid, smokeTerms, smokeChain = 400, 4, 6, 32

	// The smoke-size multicore trajectory: a short ladder on a small
	// dataset, still sweeping every forced-GOMAXPROCS point.
	smokeHs := benchwork.Ladder(4, 2)

	if *smoke {
		if *out == "" {
			runSuite(smokeN, smokeGrid, smokeTerms, smokeChain, nil)
			runMulticore(smokeN, smokeHs, nil)
			fmt.Println("\nsmoke ok: all workloads ran")
			return
		}
		sec := runSuite(smokeN, smokeGrid, smokeTerms, smokeChain, quickMeasure)
		report := newReport(sec)
		report.Multicore = runMulticore(smokeN, smokeHs, quickMeasure)
		multicoreHeadlines(report.Multicore, report.Speedups)
		report.Smoke = &sec
		writeReport(report, *out)
		return
	}

	if *out == "" {
		*out = "BENCH_8.json"
	}
	sec := runSuite(*n, *grid, *terms, *chainN, fullMeasure)
	report := newReport(sec)
	if *shardedN > 0 {
		fmt.Printf("\nmulti-core trajectory at n=%d…\n", *shardedN)
		report.Multicore = runMulticore(*shardedN, benchwork.Ladder(10, 10), fullMeasure)
		multicoreHeadlines(report.Multicore, report.Speedups)
	}
	if *storeN > 0 {
		fmt.Printf("\npersistent-store trajectory at n=%d…\n", *storeN)
		ssec := Section{N: *storeN, GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU: runtime.NumCPU(), Speedups: map[string]float64{}}
		add := func(name string, op func()) Result {
			r := fullMeasure(name, op)
			r.GOMAXPROCS = runtime.GOMAXPROCS(0)
			ssec.Results = append(ssec.Results, r)
			fmt.Printf("%-44s %12.3f ms/op  (%d iters, %d allocs/op)\n",
				r.Name, r.MsPerOp, r.Iters, r.AllocsOp)
			return r
		}
		runStoreArms(*storeN, add, ssec.Speedups, true, fmt.Sprintf("@%d", *storeN))
		for k, v := range ssec.Speedups {
			report.Speedups[k] = v
		}
		report.Store = &ssec
	}
	if *loadDur > 0 {
		fmt.Printf("\nload arm: %d clients for %v…\n", *loadConc, *loadDur)
		lr := runLoadArm(*loadAddr, *loadConc, *loadDur, *n, *grid)
		report.Load = &lr
		fmt.Printf("%-44s %10.0f qps  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  %d B/req (%d reqs, %d errors)\n",
			"load/hot-mix", lr.HotMix.QPS, lr.HotMix.P50MS, lr.HotMix.P95MS, lr.HotMix.P99MS,
			int64(lr.HotMix.AllocPerReq), lr.HotMix.Requests, lr.HotMix.Errors)
		fmt.Printf("%-44s %10.0f qps  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  %d B/req (%d reqs, %d errors, parallelism %d)\n",
			"load/parallel-mix", lr.ParallelMix.QPS, lr.ParallelMix.P50MS, lr.ParallelMix.P95MS, lr.ParallelMix.P99MS,
			int64(lr.ParallelMix.AllocPerReq), lr.ParallelMix.Requests, lr.ParallelMix.Errors, lr.ParallelMixParallelism)
	}
	fmt.Println("\nquick-measuring the smoke-size section for the regression gate…")
	smokeSec := runSuite(smokeN, smokeGrid, smokeTerms, smokeChain, quickMeasure)
	report.Smoke = &smokeSec
	// Smoke-size multicore sections ride along too (after the headline
	// extraction above, which only reads the full-size sections), so a CI
	// smoke run always finds a same-size like-parallelism baseline.
	report.Multicore = append(report.Multicore, runMulticore(smokeN, smokeHs, quickMeasure)...)
	writeReport(report, *out)
}

// runLoadArm drives the hot dashboard mix against addr (or an in-process
// fixture when addr is empty — dataset "bench" at the full suite size).
func runLoadArm(addr string, conc int, dur time.Duration, n, grid int) LoadReport {
	base := addr
	if base == "" {
		v := core.Prepare(benchwork.Dataset(n))
		srv := benchwork.StartServeFixture(map[string]*engine.Engine{"bench": benchwork.NewEngine(v)}, 0)
		defer srv.Close()
		base = srv.URL
	} else if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	mix := []benchwork.LoadRequest{
		{URL: base + "/rank", Body: benchwork.ServeRankBody("bench", 0.95, 10)},
		{URL: base + "/rank", Body: benchwork.ServeRankBody("bench", 0.5, 10)},
		{URL: base + "/rankbatch", Body: benchwork.ServeBatchBody("bench", grid)},
	}
	// The knob mix is the same dashboard with per-request shard
	// parallelism requested; the report records the effective value per
	// arm, not just the process-wide GOMAXPROCS.
	par := runtime.GOMAXPROCS(0)
	parMix := []benchwork.LoadRequest{
		{URL: base + "/rank", Body: benchwork.ServeRankBodyParallel("bench", 0.95, 10, par)},
		{URL: base + "/rank", Body: benchwork.ServeRankBodyParallel("bench", 0.5, 10, par)},
		{URL: base + "/rankbatch", Body: benchwork.ServeBatchBodyParallel("bench", grid, par)},
	}
	label := addr
	if label == "" {
		label = "in-process"
	}
	return LoadReport{
		Addr:                   label,
		Concurrency:            conc,
		GOMAXPROCS:             runtime.GOMAXPROCS(0),
		HotMix:                 benchwork.RunLoad(mix, conc, dur),
		HotMixParallelism:      0,
		ParallelMix:            benchwork.RunLoad(parMix, conc, dur),
		ParallelMixParallelism: par,
	}
}

func newReport(sec Section) Report {
	return Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		N:          sec.N,
		GridPoints: sec.GridPoints,
		ComboTerms: sec.ComboTerms,
		ChainN:     sec.ChainN,
		Results:    sec.Results,
		Speedups:   sec.Speedups,
	}
}

func writeReport(report Report, out string) {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("\nspeedups:")
	keys := sortedKeys(report.Speedups)
	for _, k := range keys {
		fmt.Printf("  %-44s %.2fx\n", k, report.Speedups[k])
	}
	fmt.Println("\nwrote", out)
}

// ---------------------------------------------------------------------------
// -diff: the benchmark regression gate.
// ---------------------------------------------------------------------------

// pickSection prefers a report's smoke section (quick-measured, smoke
// sizes — directly comparable across reports) over its full-size body.
func pickSection(r Report) Section {
	if r.Smoke != nil {
		return *r.Smoke
	}
	return Section{N: r.N, GridPoints: r.GridPoints, ComboTerms: r.ComboTerms,
		ChainN: r.ChainN, Results: r.Results, Speedups: r.Speedups}
}

func loadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// runDiff compares the old report's section against the new one. Speedup
// ratios gate (warn beyond warnRatio, fail beyond failRatio); absolute
// timings warn only, and only when both sections ran the same sizes.
func runDiff(oldPath, newPath string, warnRatio, failRatio float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	oldSec, newSec := pickSection(oldRep), pickSection(newRep)
	sameSizes := oldSec.N == newSec.N && oldSec.GridPoints == newSec.GridPoints &&
		oldSec.ComboTerms == newSec.ComboTerms && oldSec.ChainN == newSec.ChainN
	// Only hard-compare like-for-like machine shapes: the parallel sweeps
	// and the single-flight storm scale with cores. Sections from before
	// the fields existed carry zeros and are treated as matching.
	sameProcs := (oldSec.GOMAXPROCS == 0 || newSec.GOMAXPROCS == 0 || oldSec.GOMAXPROCS == newSec.GOMAXPROCS) &&
		(oldSec.NumCPU == 0 || newSec.NumCPU == 0 || oldSec.NumCPU == newSec.NumCPU)

	fmt.Printf("bench diff: %s (n=%d) → %s (n=%d)\n\n", oldPath, oldSec.N, newPath, newSec.N)
	if !sameSizes {
		// Many speedups are asymptotic (the chain product-tree arm is
		// n³/n·log n), so comparing them across dataset sizes cannot gate
		// hard — everything demotes to warnings. The checked-in baseline
		// normally carries a smoke-sized section, making this path rare.
		fmt.Println("note: section sizes differ — speedup comparison is warn-only")
	}
	if !sameProcs {
		fmt.Printf("note: CPU shapes differ (GOMAXPROCS %d→%d, cores %d→%d) — speedup comparison is warn-only\n",
			oldSec.GOMAXPROCS, newSec.GOMAXPROCS, oldSec.NumCPU, newSec.NumCPU)
		sameSizes = false
	}
	failed := diffSpeedups(oldSec.Speedups, newSec.Speedups, sameSizes, warnRatio, failRatio)

	// Multi-core trajectory sections obey the like-parallelism rule: a new
	// section hard-compares ONLY against the old section at the same forced
	// GOMAXPROCS — sharded-vs-scalar ratios shift with core count, so any
	// other pairing is apples-to-oranges and demotes to a warning.
	oldByGmp := map[int][]Section{}
	for _, s := range oldRep.Multicore {
		oldByGmp[s.GOMAXPROCS] = append(oldByGmp[s.GOMAXPROCS], s)
	}
	for _, ns := range newRep.Multicore {
		candidates, ok := oldByGmp[ns.GOMAXPROCS]
		if !ok {
			fmt.Printf("\n::warning::bench gate: multicore section GOMAXPROCS=%d has no like-parallelism baseline — skipped\n",
				ns.GOMAXPROCS)
			continue
		}
		// Full reports carry both a full-size and a smoke-size section per
		// GOMAXPROCS; prefer the same-size one so the comparison gates hard.
		os := candidates[0]
		for _, c := range candidates {
			if c.N == ns.N && c.GridPoints == ns.GridPoints {
				os = c
				break
			}
		}
		mcSame := os.N == ns.N && os.GridPoints == ns.GridPoints && os.NumCPU == ns.NumCPU
		fmt.Printf("\nmulticore GOMAXPROCS=%d (n=%d → n=%d%s):\n", ns.GOMAXPROCS, os.N, ns.N,
			map[bool]string{true: "", false: ", sizes differ — warn-only"}[mcSame])
		failed = append(failed, diffSpeedups(os.Speedups, ns.Speedups, mcSame, warnRatio, failRatio)...)
	}
	if sameSizes {
		oldByName := map[string]Result{}
		for _, r := range oldSec.Results {
			oldByName[r.Name] = r
		}
		fmt.Printf("\n%-46s %12s %12s %8s\n", "workload", "old ms/op", "new ms/op", "ratio")
		for _, nr := range newSec.Results {
			or, ok := oldByName[nr.Name]
			if !ok || or.NsPerOp <= 0 || nr.NsPerOp <= 0 {
				continue
			}
			// Like-parallelism rule at the entry level too: an arm whose
			// recorded GOMAXPROCS or shard parallelism changed is not the
			// same measurement (legacy reports carry zeros and still match).
			if or.GOMAXPROCS != 0 && nr.GOMAXPROCS != 0 &&
				(or.GOMAXPROCS != nr.GOMAXPROCS || or.Parallelism != nr.Parallelism) {
				fmt.Printf("::warning::bench gate: %q measured at unlike parallelism (GOMAXPROCS %d→%d, shards %d→%d) — timing skipped\n",
					nr.Name, or.GOMAXPROCS, nr.GOMAXPROCS, or.Parallelism, nr.Parallelism)
				continue
			}
			ratio := nr.NsPerOp / or.NsPerOp
			fmt.Printf("%-46s %12.3f %12.3f %7.2fx\n", nr.Name, or.MsPerOp, nr.MsPerOp, ratio)
			if ratio > 3 {
				// Absolute timings vary with hardware, so this never fails the
				// gate — it only leaves an annotation trail.
				fmt.Printf("::warning::bench timing drift: %q %.3f → %.3f ms/op (%.1fx)\n",
					nr.Name, or.MsPerOp, nr.MsPerOp, ratio)
			}
		}
	} else {
		fmt.Printf("\n(timing comparison skipped: section sizes differ, n=%d vs n=%d)\n", oldSec.N, newSec.N)
	}

	if len(failed) > 0 {
		return fmt.Errorf("%d speedup(s) regressed beyond %gx: %s",
			len(failed), failRatio, strings.Join(failed, ", "))
	}
	fmt.Println("\nbench diff: no hard regressions")
	return nil
}

// diffSpeedups compares one speedup map against its baseline, printing a
// row per key and returning the keys that regressed beyond failRatio.
// gateHard=false (differing sizes or CPU shapes) demotes everything to
// warnings.
func diffSpeedups(oldS, newS map[string]float64, gateHard bool, warnRatio, failRatio float64) []string {
	fmt.Printf("%-46s %10s %10s %8s\n", "speedup", "old", "new", "status")
	var failed []string
	for _, key := range sortedKeys(oldS) {
		oldV := oldS[key]
		newV, ok := newS[key]
		if !ok {
			// A vanished key must not silently drop out of the gate: a
			// renamed or deleted arm is exactly the kind of rot to surface.
			fmt.Printf("::warning::bench gate: speedup %q (was %.2fx) is missing from the new report\n", key, oldV)
			fmt.Printf("%-46s %9.2fx %10s %8s\n", key, oldV, "—", "missing")
			continue
		}
		if oldV <= 0 || newV <= 0 {
			continue
		}
		// "overhead" keys are lower-is-better ratios; everything else is a
		// higher-is-better speedup.
		regression := oldV / newV
		if strings.Contains(key, "overhead") {
			regression = newV / oldV
		}
		status := "ok"
		switch {
		case regression > failRatio && gateHard:
			status = "FAIL"
			failed = append(failed, key)
			fmt.Printf("::error::bench regression: %q was %.2fx, now %.2fx (>%gx off)\n",
				key, oldV, newV, failRatio)
		case regression > warnRatio:
			status = "warn"
			fmt.Printf("::warning::bench drift: %q was %.2fx, now %.2fx\n", key, oldV, newV)
		}
		fmt.Printf("%-46s %9.2fx %9.2fx %8s\n", key, oldV, newV, status)
	}
	return failed
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
