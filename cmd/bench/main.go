// Command bench runs the repeated-query benchmark suite behind the
// prepared-evaluation engine and emits a machine-readable BENCH_N.json, so
// the repository's performance trajectory is recorded PR over PR.
//
// Usage:
//
//	bench [-out BENCH_3.json] [-n 10000] [-grid 16] [-terms 20] [-smoke]
//
// The workload bodies are shared with the root bench_test.go suite via
// internal/benchwork, so the JSON records exactly what `go test -bench`
// measures:
//
//   - spectrum: PRFeLog at every point of an α grid (the Figure 11 kernel),
//     one-shot (rebuild + re-sort per query) vs prepared (sort once) vs
//     parallel batch;
//   - ranked-spectrum: the same sweep producing full rankings — one-shot vs
//     prepared (re-sort per α) vs parallel vs the kinetic sweep (sort once,
//     advance by Theorem 4 adjacent-pair crossings);
//   - crossing: the Theorem 4 crossing-point solver, incremental
//     Newton/secant vs the bisection reference, over mixed-span pairs;
//   - combo: an L-term PRFe linear combination (the Figure 8 kernel),
//     multi-pass (one scan per term) vs fused single-pass vs parallel-by-term
//     vs one-shot (prepare per call);
//   - correlated: PRFe, α sweeps and PRFe combinations on and/xor trees
//     (Syn-XOR x-tuples and Syn-HIGH deep correlation), the Section 9.3
//     Markov chain (product-tree prepared path vs the Θ(n³) partial-sum DP)
//     and the Section 9.4 junction tree (prepared: build + DP once, fold per
//     α — vs one-shot: rebuild + re-run per α). The `correlated/prepared/*`
//     workloads are the PR 3 prepared-engine arms.
//   - engine: the unified Ranker engine (PR 4). ONE generic sweep body runs
//     against all four backends through Engine.RankBatch dispatch; the
//     independent arms are paired with direct prepared-view calls so the
//     `engine * overhead` entries certify dispatch cost (acceptance: ≤ 5%).
//
// -smoke runs every workload body exactly once at tiny sizes and writes no
// file — the CI guard that keeps the bench workloads compiling and running.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchwork"
	"repro/internal/core"
)

// Result is one measured benchmark case.
type Result struct {
	Name     string  `json:"name"`
	Iters    int     `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	MsPerOp  float64 `json:"ms_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
}

// Report is the full BENCH_N.json payload.
type Report struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	N          int                `json:"dataset_size"`
	GridPoints int                `json:"spectrum_grid_points"`
	ComboTerms int                `json:"combo_terms"`
	ChainN     int                `json:"chain_length"`
	Results    []Result           `json:"results"`
	Speedups   map[string]float64 `json:"speedups"`
}

func measure(name string, op func()) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	return Result{
		Name:     name,
		Iters:    r.N,
		NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
		MsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N) / 1e6,
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
	}
}

func main() {
	var (
		out    = flag.String("out", "BENCH_4.json", "output JSON path")
		n      = flag.Int("n", 10000, "dataset size")
		grid   = flag.Int("grid", 16, "α grid points for the spectrum sweeps")
		terms  = flag.Int("terms", 20, "terms in the PRFe combination")
		chainN = flag.Int("chain", 200, "Markov-chain length (the DP arm is cubic: keep small)")
		smoke  = flag.Bool("smoke", false, "run every workload once at tiny sizes, write nothing")
	)
	flag.Parse()

	if *smoke {
		*n, *grid, *terms, *chainN = 400, 4, 6, 32
	}

	d := benchwork.Dataset(*n)
	alphas, calphas := benchwork.Grid(*grid)
	expTerms := benchwork.Terms(*terms)
	v := core.Prepare(d)
	pairs := benchwork.CrossingPairs(*n, 64)
	xorTree := benchwork.XTupleTree(*n)
	deepTree := benchwork.DeepTree(*n)
	chain := benchwork.MarkovChain(*chainN)
	// The one-shot junction arm re-triangulates and re-runs the Θ(n³) DP per
	// grid point, so the generic-network sweep runs on a shorter chain and a
	// sub-grid to keep the suite's wall clock sane.
	netN := *chainN / 2
	if netN < 2 {
		netN = 2
	}
	net := benchwork.ChainNetwork(benchwork.MarkovChain(netN))
	netGrid := *grid / 2
	if netGrid < 1 {
		netGrid = 1
	}
	_, netCalphas := benchwork.Grid(netGrid)

	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		N:          *n,
		GridPoints: *grid,
		ComboTerms: *terms,
		ChainN:     *chainN,
		Speedups:   map[string]float64{},
	}

	add := func(name string, op func()) Result {
		if *smoke {
			op()
			fmt.Printf("%-40s ok\n", name)
			return Result{Name: name}
		}
		r := measure(name, op)
		report.Results = append(report.Results, r)
		fmt.Printf("%-40s %12.3f ms/op  (%d iters, %d allocs/op)\n",
			r.Name, r.MsPerOp, r.Iters, r.AllocsOp)
		return r
	}

	spOne := add("spectrum/oneshot", func() { benchwork.SpectrumOneShot(d, calphas) })
	spPrep := add("spectrum/prepared", func() { benchwork.SpectrumPrepared(d, calphas) })
	spPar := add("spectrum/parallel", func() { benchwork.SpectrumParallel(d, calphas) })

	rkOne := add("ranked-spectrum/oneshot", func() { benchwork.RankedOneShot(d, alphas) })
	rkPrep := add("ranked-spectrum/prepared", func() { benchwork.RankedPrepared(d, alphas) })
	rkPar := add("ranked-spectrum/parallel", func() { benchwork.RankedParallel(d, alphas) })
	rkKin := add("ranked-spectrum/kinetic", func() { benchwork.RankedKinetic(d, alphas) })

	crRef := add("crossing/reference", func() { benchwork.CrossingReference(v, pairs) })
	crInc := add("crossing/incremental", func() { benchwork.CrossingIncremental(v, pairs) })

	cbMulti := add("combo/multipass", func() { benchwork.ComboMultiPass(v, expTerms) })
	cbFused := add("combo/fused", func() { benchwork.ComboFused(v, expTerms) })
	cbPar := add("combo/parallel", func() { benchwork.ComboParallel(v, expTerms) })
	cbOne := add("combo/oneshot", func() { benchwork.ComboOneShot(d, expTerms) })

	add("correlated/andxor-xor-prfe", func() { benchwork.TreePRFe(xorTree) })
	add("correlated/andxor-high-prfe", func() { benchwork.TreePRFe(deepTree) })
	axSwOne := add("correlated/andxor-xor-sweep-oneshot", func() { benchwork.TreeSweepOneShot(xorTree, calphas) })
	axSwPrep := add("correlated/prepared/andxor-xor-sweep", func() { benchwork.TreeSweepPrepared(xorTree, calphas) })
	hiSwOne := add("correlated/andxor-high-sweep-oneshot", func() { benchwork.TreeSweepOneShot(deepTree, calphas) })
	hiSwPrep := add("correlated/prepared/andxor-high-sweep", func() { benchwork.TreeSweepPrepared(deepTree, calphas) })
	axCbOne := add("correlated/andxor-xor-combo", func() { benchwork.TreeCombo(xorTree, expTerms) })
	preparedXorTree := benchwork.PrepareTree(xorTree)
	axCbPrep := add("correlated/prepared/andxor-xor-combo", func() { benchwork.TreeComboPrepared(preparedXorTree, expTerms) })

	chDP := add("correlated/junction-chain-prfe-dp", func() { benchwork.ChainPRFeDP(chain) })
	chFast := add("correlated/junction-chain-prfe", func() { benchwork.ChainPRFe(chain) })
	chSweep := add("correlated/prepared/chain-sweep", func() { benchwork.ChainSweepPrepared(chain, calphas) })
	netOne := add("correlated/junction-network-sweep-oneshot", func() { benchwork.NetworkSweepOneShot(net, netCalphas) })
	netPrep := add("correlated/prepared/network-sweep", func() { benchwork.NetworkSweepPrepared(net, netCalphas) })

	// Unified-engine arms: one generic sweep body, four backends. The
	// independent arms pair engine dispatch against the direct prepared
	// calls; preparation is hoisted on both sides so the pairs measure
	// exactly the dispatch overhead.
	netAlphas := make([]float64, len(netCalphas))
	for i, ca := range netCalphas {
		netAlphas[i] = real(ca)
	}
	engIndep := benchwork.NewEngine(v)
	engTree := benchwork.NewEngine(preparedXorTree)
	engChain := benchwork.NewEngine(benchwork.PrepareChain(chain))
	engNet := benchwork.NewEngine(benchwork.PrepareNetwork(net))
	dirRank := add("engine/direct-rank-sweep", func() { benchwork.DirectRankSweep(v, alphas) })
	engRank := add("engine/rank-sweep", func() { benchwork.EngineRankSweep(engIndep, alphas) })
	dirTopK := add("engine/direct-topk-sweep", func() { benchwork.DirectTopKSweep(v, alphas, 10) })
	engTopK := add("engine/topk-sweep", func() { benchwork.EngineTopKSweep(engIndep, alphas, 10) })
	add("engine/tree-rank-sweep", func() { benchwork.EngineRankSweep(engTree, alphas) })
	add("engine/chain-rank-sweep", func() { benchwork.EngineRankSweep(engChain, alphas) })
	add("engine/network-rank-sweep", func() { benchwork.EngineRankSweep(engNet, netAlphas) })
	add("engine/tree-value-sweep", func() { benchwork.EngineValueSweep(engTree, alphas) })

	if *smoke {
		fmt.Println("\nsmoke ok: all workloads ran")
		return
	}

	report.Speedups["spectrum prepared vs oneshot"] = spOne.NsPerOp / spPrep.NsPerOp
	report.Speedups["spectrum parallel vs oneshot"] = spOne.NsPerOp / spPar.NsPerOp
	report.Speedups["ranked spectrum prepared vs oneshot"] = rkOne.NsPerOp / rkPrep.NsPerOp
	report.Speedups["ranked spectrum parallel vs oneshot"] = rkOne.NsPerOp / rkPar.NsPerOp
	report.Speedups["ranked spectrum kinetic vs oneshot"] = rkOne.NsPerOp / rkKin.NsPerOp
	report.Speedups["ranked spectrum kinetic vs prepared"] = rkPrep.NsPerOp / rkKin.NsPerOp
	report.Speedups["crossing incremental vs reference"] = crRef.NsPerOp / crInc.NsPerOp
	report.Speedups["combo fused vs multipass"] = cbMulti.NsPerOp / cbFused.NsPerOp
	report.Speedups["combo fused vs oneshot"] = cbOne.NsPerOp / cbFused.NsPerOp
	report.Speedups["combo parallel vs multipass"] = cbMulti.NsPerOp / cbPar.NsPerOp
	report.Speedups["andxor xor sweep prepared vs oneshot"] = axSwOne.NsPerOp / axSwPrep.NsPerOp
	report.Speedups["andxor high sweep prepared vs oneshot"] = hiSwOne.NsPerOp / hiSwPrep.NsPerOp
	report.Speedups["andxor combo prepared vs oneshot"] = axCbOne.NsPerOp / axCbPrep.NsPerOp
	report.Speedups["chain prfe product-tree vs DP"] = chDP.NsPerOp / chFast.NsPerOp
	report.Speedups["chain sweep prepared vs per-query DP"] =
		chDP.NsPerOp * float64(*grid) / chSweep.NsPerOp
	report.Speedups["network sweep prepared vs oneshot"] = netOne.NsPerOp / netPrep.NsPerOp
	// Dispatch-overhead ratios (engine time / direct time): the api_redesign
	// acceptance criterion is ≤ 1.05 on the ranked and top-k α-sweep pairs.
	report.Speedups["engine rank sweep overhead (engine/direct)"] = engRank.NsPerOp / dirRank.NsPerOp
	report.Speedups["engine topk sweep overhead (engine/direct)"] = engTopK.NsPerOp / dirTopK.NsPerOp

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("\nspeedups:")
	for k, s := range report.Speedups {
		fmt.Printf("  %-42s %.2fx\n", k, s)
	}
	fmt.Println("\nwrote", *out)
}
