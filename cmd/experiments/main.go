// Command experiments regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig7 -scale 0.1 -seed 1
//	experiments -run all -scale 0.01
//
// Scale multiplies the paper's dataset sizes (1.0 = paper scale; the default
// 0.05 finishes the full suite in a couple of minutes on a laptop).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment id (table1, fig4..fig11, table3) or \"all\"")
		scale = flag.Float64("scale", 0.05, "dataset size multiplier (1.0 = paper scale)")
		seed  = flag.Int64("seed", 1, "random seed")
		list  = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Paper)
		}
		return
	}

	cfg := experiments.Config{Out: os.Stdout, Scale: *scale, Seed: *seed}
	var toRun []experiments.Experiment
	if *run == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
			os.Exit(1)
		}
		toRun = []experiments.Experiment{e}
	}
	for _, e := range toRun {
		start := time.Now()
		fmt.Printf("\n######## %s — %s\n", e.ID, e.Paper)
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n", e.ID, time.Since(start).Seconds())
	}
}
