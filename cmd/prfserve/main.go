// Command prfserve serves probabilistic ranking queries over HTTP: the
// production front end of the unified Ranker engine. It loads one or more
// named datasets into prepared views at startup — paying each model's
// sort/triangulation cost exactly once — then answers declarative JSON
// queries with per-request deadlines and an engine-level result cache per
// dataset.
//
// Usage:
//
//	prfserve -data iip=ind:iip.csv -data sensors=xrel:sensors.csv -listen :8080
//	prfserve -demo                                # three synthetic datasets
//	prfserve -oneshot -data iip=ind:iip.csv -req query.json
//	prfserve -store ./segs -admin-token $TOK      # persistent, long-lived
//
// Dataset kinds: ind (CSV score,probability), xrel (CSV
// score,probability,group — rows sharing a group are mutually exclusive),
// tree (JSON and/xor spec), chain (JSON Markov-chain spec).
//
// Endpoints: POST /rank, POST /rankbatch, GET /datasets, GET /stats,
// GET /healthz. POST bodies must declare Content-Type: application/json.
// Example:
//
//	curl -s localhost:8080/rank -H 'Content-Type: application/json' \
//	  -d '{"dataset": "iip",
//	  "query": {"metric": "prfe", "alpha": 0.95, "output": "topk", "k": 10}}'
//
// Hot responses are answered from an encoded-byte cache (one Write, no
// re-encode; -byte-cache sizes it), identical concurrent cold queries
// collapse into one evaluation (-no-single-flight disables the latch for
// benchmarking), responses negotiate Accept-Encoding: gzip, and
// /rankbatch supports "stream": true (chunked per-grid-point emission)
// and "format": "columnar" (parallel arrays for large grids).
//
// -oneshot evaluates one request body against Engine.Rank in-process — no
// HTTP, no cache — and prints the byte-identical JSON the HTTP endpoint
// would return. The CI serve smoke test diffs the two paths against each
// other (scripts/serve_smoke.sh).
//
// With -store DIR the server is long-lived: -data files are imported into
// the store as binary segments (use cmd/prfstore for offline imports), every
// segment in the store is served, and -admin-token enables the dataset
// lifecycle endpoints (POST/DELETE /datasets/{name}, GET
// /datasets/{name}/info) for zero-downtime replacement. A segment that
// fails to open is skipped and reported under /stats load_errors instead of
// aborting startup; startup fails only when nothing loads at all.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/serve"
	"repro/internal/store"
)

// dataFlags collects repeatable -data name=kind:path specs.
type dataFlags []dataSpec

type dataSpec struct{ name, kind, path string }

func (f *dataFlags) String() string {
	parts := make([]string, len(*f))
	for i, d := range *f {
		parts[i] = fmt.Sprintf("%s=%s:%s", d.name, d.kind, d.path)
	}
	return strings.Join(parts, ",")
}

func (f *dataFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=kind:path, got %q", v)
	}
	kind, path, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("want name=kind:path, got %q", v)
	}
	if name == "" || path == "" {
		return fmt.Errorf("empty name or path in %q", v)
	}
	*f = append(*f, dataSpec{name: name, kind: kind, path: path})
	return nil
}

func main() {
	var (
		data       dataFlags
		listen     = flag.String("listen", "127.0.0.1:8080", "address to serve on")
		demo       = flag.Bool("demo", false, "load three synthetic demo datasets (demo-ind, demo-xrel, demo-chain)")
		demoN      = flag.Int("demo-n", 2000, "demo dataset size")
		cacheCap   = flag.Int("cache", engine.DefaultCacheCapacity, "result-cache entries per dataset (negative disables)")
		byteCap    = flag.Int("byte-cache", serve.DefaultByteCacheCapacity, "response-byte-cache entries per dataset (negative disables)")
		noFlight   = flag.Bool("no-single-flight", false, "disable the per-key latch that collapses concurrent identical cold requests")
		timeout    = flag.Duration("timeout", 10*time.Second, "default per-request deadline (0 = none)")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "upper bound on client-requested deadlines (0 = none)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		oneshot    = flag.Bool("oneshot", false, "evaluate -req against Engine.Rank in-process, print the response JSON, exit")
		reqPath    = flag.String("req", "-", "request JSON for -oneshot (\"-\" for stdin)")
		storeDir   = flag.String("store", "", "segment store directory: import -data files into it and serve every segment in it")
		adminToken = flag.String("admin-token", "", "Bearer token enabling the dataset admin endpoints (needs -store)")
	)
	flag.Var(&data, "data", "dataset to load, name=kind:path (kind: ind|xrel|tree|chain); repeatable")
	flag.Parse()

	if err := run(data, *listen, *demo, *demoN, *cacheCap, *byteCap, *noFlight, *timeout, *maxTimeout, *addrFile, *oneshot, *reqPath, *storeDir, *adminToken); err != nil {
		fmt.Fprintln(os.Stderr, "prfserve:", err)
		os.Exit(1)
	}
}

func run(data dataFlags, listen string, demo bool, demoN, cacheCap, byteCap int, noFlight bool,
	timeout, maxTimeout time.Duration, addrFile string, oneshot bool, reqPath, storeDir, adminToken string) error {
	if oneshot {
		// Oneshot stays the storeless in-process reference path: it parses
		// -data files directly so the smoke tests can diff store-served
		// responses against an independent load of the same sources.
		engines, _, err := loadEngines(data, demo, demoN)
		if err != nil {
			return err
		}
		if len(engines) == 0 {
			return errors.New("no datasets: pass -data name=kind:path (or -demo)")
		}
		return runOneshot(engines, reqPath)
	}
	if adminToken != "" && storeDir == "" {
		return errors.New("-admin-token needs -store (admin endpoints manage stored segments)")
	}

	var st *store.Store
	if storeDir != "" {
		var err error
		if st, err = store.Open(storeDir); err != nil {
			return err
		}
		// -data files become segments first; the serving views are then
		// opened from the store so startup and import share one code path.
		seen := map[string]bool{}
		for _, d := range data {
			if seen[d.name] {
				return fmt.Errorf("dataset %q given twice", d.name)
			}
			seen[d.name] = true
			if err := importFile(st, d); err != nil {
				return err
			}
		}
	}

	s := serve.New(serve.Options{
		DefaultTimeout:      timeout,
		MaxTimeout:          maxTimeout,
		CacheCapacity:       cacheCap,
		ByteCacheCapacity:   byteCap,
		DisableSingleFlight: noFlight,
		Store:               st,
		AdminToken:          adminToken,
	})

	loaded := []string{}
	if st != nil {
		names, err := st.Names()
		if err != nil {
			return err
		}
		for _, name := range names {
			// Skip-and-report: one unreadable segment must not take down
			// the healthy ones. The failure stays visible under /stats.
			if err := s.InstallFromStore(name); err != nil {
				s.RecordLoadError(name, err)
				fmt.Fprintf(os.Stderr, "prfserve: skipping dataset %q: %v\n", name, err)
				continue
			}
			loaded = append(loaded, name)
		}
	} else {
		engines, order, err := loadEngines(data, false, 0)
		if err != nil {
			return err
		}
		for _, name := range order {
			if err := s.AddDataset(name, engines[name]); err != nil {
				return err
			}
			loaded = append(loaded, name)
		}
	}
	if demo {
		for name, e := range demoEngines(demoN) {
			if err := s.AddDataset(name, e); err != nil {
				return err
			}
			loaded = append(loaded, name)
		}
	}
	if len(loaded) == 0 {
		if storeDir != "" {
			return errors.New("no datasets loaded: the store is empty or every segment failed to open")
		}
		return errors.New("no datasets: pass -data name=kind:path (or -demo)")
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	for _, name := range loaded {
		fmt.Printf("prfserve: dataset %q loaded\n", name)
	}
	fmt.Printf("prfserve: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		fmt.Printf("prfserve: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}

// loadEngines parses -data files (and optionally the demo set) straight
// into prepared engines — the storeless path.
func loadEngines(data dataFlags, demo bool, demoN int) (map[string]*engine.Engine, []string, error) {
	engines := map[string]*engine.Engine{}
	order := []string{}
	add := func(name string, e *engine.Engine) error {
		if _, dup := engines[name]; dup {
			return fmt.Errorf("dataset %q given twice", name)
		}
		engines[name] = e
		order = append(order, name)
		return nil
	}
	for _, d := range data {
		e, err := serve.LoadFile(d.kind, d.path)
		if err != nil {
			return nil, nil, err
		}
		if err := add(d.name, e); err != nil {
			return nil, nil, err
		}
	}
	if demo {
		for name, e := range demoEngines(demoN) {
			if err := add(name, e); err != nil {
				return nil, nil, err
			}
		}
	}
	return engines, order, nil
}

// importFile parses one -data file and persists it as the next generation
// of the named segment.
func importFile(st *store.Store, d dataSpec) error {
	f, err := os.Open(d.path)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := store.Parse(d.kind, f)
	if err != nil {
		return fmt.Errorf("%s: %w", d.path, err)
	}
	if _, err := st.Import(d.name, ds); err != nil {
		return err
	}
	return nil
}

// runOneshot answers one RankRequest via Engine.Rank/RankBatch directly —
// the in-process reference the HTTP path is certified against. Batch is
// selected by the presence of an α grid, mirroring the two endpoints.
func runOneshot(engines map[string]*engine.Engine, reqPath string) error {
	var r io.Reader = os.Stdin
	if reqPath != "-" {
		f, err := os.Open(reqPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req serve.RankRequest
	if err := dec.Decode(&req); err != nil {
		return fmt.Errorf("malformed request JSON: %w", err)
	}
	e, ok := engines[req.Dataset]
	if !ok {
		return fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	q, err := req.Query.ToQuery()
	if err != nil {
		return err
	}
	ctx := context.Background()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	enc := json.NewEncoder(os.Stdout)
	if len(q.Alphas) > 0 {
		res, err := e.RankBatch(ctx, q)
		if err != nil {
			return err
		}
		return enc.Encode(serve.BatchResponse{Dataset: req.Dataset, Results: serve.FromResults(res)})
	}
	res, err := e.Rank(ctx, q)
	if err != nil {
		return err
	}
	return enc.Encode(serve.RankResponse{Dataset: req.Dataset, WireResult: serve.FromResult(res)})
}

// demoEngines builds the synthetic demo datasets: one per loadable model
// family (independent, x-relation-like tree, Markov chain).
func demoEngines(n int) map[string]*engine.Engine {
	tree, err := datagen.SynXOR(n, 42)
	if err != nil {
		panic(err) // generator invariant: SynXOR specs are always valid
	}
	chainN := n / 10
	if chainN < 2 {
		chainN = 2
	}
	return map[string]*engine.Engine{
		"demo-ind":   engine.New(core.Prepare(datagen.IIPLike(n, 42))),
		"demo-xrel":  engine.New(andxor.PrepareTree(tree)),
		"demo-chain": engine.New(junction.PrepareChain(datagen.MarkovChainLike(chainN, 42))),
	}
}
