// Command prflint runs the repository's invariant analyzers. It speaks
// two protocols:
//
//	go vet -vettool=$(which prflint) ./...   # the vet unit protocol
//	prflint ./...                            # standalone, via go list
//
// Under go vet, cmd/go first queries `prflint -flags` (supported analyzer
// flags, none here) and `prflint -V=full` (a content hash, so editing
// prflint invalidates vet's result cache), then invokes prflint once per
// package with a vet.cfg file. Standalone, prflint loads packages itself
// and prints the same findings.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/golist"
	"repro/internal/lint/unit"
)

func main() {
	args := os.Args[1:]
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "-V" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		unit.Main(args[n-1], lint.Analyzers()) // exits
	}
	os.Exit(golist.Main(args, lint.Analyzers()))
}

// printVersion emits the -V=full line cmd/go hashes into its build cache
// key: "devel" plus a buildID derived from this executable's contents, so
// a rebuilt prflint never serves stale cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("prflint version devel buildID=%02x\n", h.Sum(nil))
}
