// Command datagen emits the paper's synthetic workloads as CSV
// (score,probability rows) for use with prfrank or external tools.
//
// Usage:
//
//	datagen -kind iip -n 100000 -seed 1 > iip.csv
//	datagen -kind synind -n 100000 > synind.csv
//	datagen -kind synxor -n 10000 > synxor.csv   (marginals of the tree)
//
// Kinds: iip, synind, synxor, synlow, synmed, synhigh. For the tree kinds
// the CSV contains the leaf marginals (the independence-assuming view);
// programmatic users should build the trees via the library to retain the
// correlations.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/andxor"
	"repro/internal/datagen"
	"repro/internal/pdb"
)

func main() {
	var (
		kind = flag.String("kind", "iip", "dataset kind: iip|synind|synxor|synlow|synmed|synhigh")
		n    = flag.Int("n", 10000, "number of tuples")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var d *pdb.Dataset
	switch *kind {
	case "iip":
		d = datagen.IIPLike(*n, *seed)
	case "synind":
		d = datagen.SynIND(*n, *seed)
	case "synxor", "synlow", "synmed", "synhigh":
		builders := map[string]func(int, int64) (*andxor.Tree, error){
			"synxor": datagen.SynXOR, "synlow": datagen.SynLOW,
			"synmed": datagen.SynMED, "synhigh": datagen.SynHIGH,
		}
		tree, err := builders[*kind](*n, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		d = tree.Dataset()
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "score,probability")
	for _, t := range d.Tuples() {
		fmt.Fprintf(w, "%g,%g\n", t.Score, t.Prob)
	}
}
