// Command prfstore manages a segment store offline: the same binary
// segments cmd/prfserve serves from (-store DIR) and mutates through its
// admin endpoints, without a running server.
//
// Usage:
//
//	prfstore -store DIR import NAME KIND PATH   # persist one dataset file
//	prfstore -store DIR list                    # every segment, one line each
//	prfstore -store DIR info NAME               # metadata of one segment, JSON
//	prfstore -store DIR verify [NAME...]        # full checksum + re-encode check
//	prfstore -store DIR compact [NAME...]       # rewrite canonically, keep generation
//	prfstore -store DIR delete NAME             # remove the segment
//
// KIND is one of ind (CSV score,probability), xrel (CSV
// score,probability,group), tree (JSON and/xor spec), chain (JSON
// Markov-chain spec) — the same formats prfserve -data loads. Re-importing
// an existing NAME writes the next generation atomically; a server that
// already opened the old generation keeps serving its snapshot. verify with
// no names checks the whole store and fails on the first broken segment.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/store"
)

func main() {
	storeDir := flag.String("store", "", "segment store directory (required)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: prfstore -store DIR {import NAME KIND PATH | list | info NAME | verify [NAME...] | compact [NAME...] | delete NAME}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(*storeDir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "prfstore:", err)
		os.Exit(1)
	}
}

func run(storeDir string, args []string) error {
	if storeDir == "" {
		return errors.New("missing -store DIR")
	}
	if len(args) == 0 {
		return errors.New("missing command (import, list, info, verify, compact, delete)")
	}
	st, err := store.Open(storeDir)
	if err != nil {
		return err
	}
	cmd, args := args[0], args[1:]
	switch cmd {
	case "import":
		if len(args) != 3 {
			return errors.New("usage: import NAME KIND PATH")
		}
		return runImport(st, args[0], args[1], args[2])
	case "list":
		if len(args) != 0 {
			return errors.New("usage: list")
		}
		return runList(st)
	case "info":
		if len(args) != 1 {
			return errors.New("usage: info NAME")
		}
		info, err := st.Info(args[0])
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(info)
	case "verify":
		return forEach(st, args, "verified", st.Verify)
	case "compact":
		return forEach(st, args, "compacted", func(name string) error {
			_, err := st.Compact(name)
			return err
		})
	case "delete":
		if len(args) != 1 {
			return errors.New("usage: delete NAME")
		}
		if err := st.Delete(args[0]); err != nil {
			return err
		}
		fmt.Printf("deleted %s\n", args[0])
		return nil
	default:
		return fmt.Errorf("unknown command %q (import, list, info, verify, compact, delete)", cmd)
	}
}

func runImport(st *store.Store, name, kind, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := store.Parse(kind, f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	info, err := st.Import(name, ds)
	if err != nil {
		return err
	}
	fmt.Printf("imported %s: kind %s, %d tuples, generation %d, %d bytes\n",
		info.Name, info.Kind, info.Tuples, info.Generation, info.SizeBytes)
	return nil
}

func runList(st *store.Store) error {
	names, err := st.Names()
	if err != nil {
		return err
	}
	for _, name := range names {
		info, err := st.Info(name)
		if err != nil {
			return err
		}
		fmt.Printf("%s\tkind %s\t%d tuples\tgeneration %d\t%d bytes\n",
			info.Name, info.Kind, info.Tuples, info.Generation, info.SizeBytes)
	}
	return nil
}

// forEach applies op to the named segments, or to every segment in the
// store when none are named.
func forEach(st *store.Store, names []string, verb string, op func(string) error) error {
	if len(names) == 0 {
		var err error
		if names, err = st.Names(); err != nil {
			return err
		}
	}
	for _, name := range names {
		if err := op(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%s %s\n", verb, name)
	}
	return nil
}
