// Command prfrank ranks a probabilistic dataset from a CSV file of
// "score,probability[,group]" rows using any of the implemented ranking
// functions. When a third column is present, rows sharing a group label are
// treated as mutually exclusive alternatives (the x-tuples model) and the
// tree-aware algorithms are used.
//
// Usage:
//
//	prfrank -in data.csv -func prfe -alpha 0.95 -k 10
//	prfrank -in data.csv -func pt -h 100 -k 10
//	prfrank -in xdata.csv -func urank -k 10      # with a group column
//
// Functions: prfe (default), pt, escore, erank, urank, utop, kselection,
// prob, score, consensus. With a group column only prfe, pt, erank and
// urank are available (the rest have no published correlated algorithm).
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/andxor"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/pdb"
)

func main() {
	var (
		in       = flag.String("in", "-", "input CSV of score,probability rows (\"-\" for stdin)")
		fn       = flag.String("func", "prfe", "ranking function: prfe|pt|escore|erank|urank|utop|kselection|prob|score|consensus")
		alpha    = flag.Float64("alpha", 0.95, "PRFe parameter α")
		h        = flag.Int("h", 100, "PT(h) depth")
		k        = flag.Int("k", 10, "answer size")
		withVals = flag.Bool("values", false, "print ranking values alongside tuples")
	)
	flag.Parse()

	d, groups, tree, err := readInput(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prfrank:", err)
		os.Exit(1)
	}
	if tree != nil {
		if err := rankTree(tree, groups, *fn, *alpha, *h, *k, *withVals); err != nil {
			fmt.Fprintln(os.Stderr, "prfrank:", err)
			os.Exit(1)
		}
		return
	}
	if d.Len() == 0 {
		fmt.Fprintln(os.Stderr, "prfrank: empty input")
		os.Exit(1)
	}
	kk := *k
	if kk > d.Len() {
		kk = d.Len()
	}

	// One prepared (sorted, struct-of-arrays) view serves every sort-based
	// function; built lazily so the order-insensitive ones skip the sort.
	var lazyView *core.Prepared
	view := func() *core.Prepared {
		if lazyView == nil {
			lazyView = core.Prepare(d)
		}
		return lazyView
	}
	var ranking pdb.Ranking
	values := map[pdb.TupleID]float64{}
	switch *fn {
	case "prfe":
		vals := view().PRFeLog(complex(*alpha, 0))
		ranking = pdb.RankByValue(vals).TopK(kk)
		for id, v := range vals {
			values[pdb.TupleID(id)] = v
		}
	case "pt":
		vals := view().PTh(*h)
		ranking = pdb.RankByValue(vals).TopK(kk)
		for id, v := range vals {
			values[pdb.TupleID(id)] = v
		}
	case "escore":
		vals := baselines.EScore(d)
		ranking = pdb.RankByValue(vals).TopK(kk)
		for id, v := range vals {
			values[pdb.TupleID(id)] = v
		}
	case "erank":
		vals := baselines.ERankPrepared(view())
		ranking = baselines.ERankRanking(vals).TopK(kk)
		for id, v := range vals {
			values[pdb.TupleID(id)] = v
		}
	case "urank":
		ranking = baselines.URankPrepared(view(), kk)
	case "utop":
		set, p := baselines.UTopKPrepared(view(), kk)
		ranking = set
		fmt.Printf("# U-Top answer probability: %g\n", p)
	case "kselection":
		set, v := baselines.KSelectionPrepared(view(), kk)
		ranking = set
		fmt.Printf("# expected best score: %g\n", v)
	case "prob":
		vals := baselines.ByProbability(d)
		ranking = pdb.RankByValue(vals).TopK(kk)
		for id, v := range vals {
			values[pdb.TupleID(id)] = v
		}
	case "score":
		vals := baselines.ByScore(d)
		ranking = pdb.RankByValue(vals).TopK(kk)
		for id, v := range vals {
			values[pdb.TupleID(id)] = v
		}
	case "consensus":
		ranking = baselines.ConsensusTopK(d, kk)
	default:
		fmt.Fprintf(os.Stderr, "prfrank: unknown function %q\n", *fn)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-6s %-8s %-12s %-12s", "rank", "tuple", "score", "prob")
	if *withVals {
		fmt.Fprintf(w, " %-14s", "value")
	}
	fmt.Fprintln(w)
	for pos, id := range ranking {
		t, _ := d.ByID(id)
		fmt.Fprintf(w, "%-6d %-8d %-12g %-12g", pos+1, id, t.Score, t.Prob)
		if *withVals {
			if v, ok := values[id]; ok {
				fmt.Fprintf(w, " %-14g", v)
			}
		}
		fmt.Fprintln(w)
	}
}

// readInput parses score,probability[,group] rows. Without a group column
// it returns an independent dataset; with one it returns the x-tuple tree
// and the per-leaf group labels.
func readInput(path string) (*pdb.Dataset, []string, *andxor.Tree, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, err
		}
		defer f.Close()
		r = f
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var scores, probs []float64
	var labels []string
	grouped := false
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, err
		}
		line++
		if len(rec) < 2 {
			return nil, nil, nil, fmt.Errorf("line %d: need score,probability", line)
		}
		if line == 1 && !isNumeric(rec[0]) {
			continue // header row
		}
		s, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: bad score %q", line, rec[0])
		}
		p, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: bad probability %q", line, rec[1])
		}
		scores = append(scores, s)
		probs = append(probs, p)
		if len(rec) >= 3 && rec[2] != "" {
			grouped = true
			labels = append(labels, rec[2])
		} else {
			labels = append(labels, "")
		}
	}
	if !grouped {
		d, err := pdb.NewDataset(scores, probs)
		return d, nil, nil, err
	}
	// Build x-tuple groups in first-appearance order; ungrouped rows get
	// their own singleton group.
	order := []string{}
	byLabel := map[string][]andxor.Alternative{}
	leafLabels := make([]string, 0, len(scores))
	for i := range scores {
		l := labels[i]
		if l == "" {
			l = fmt.Sprintf("_row%d", i)
		}
		if _, ok := byLabel[l]; !ok {
			order = append(order, l)
		}
		byLabel[l] = append(byLabel[l], andxor.Alternative{Score: scores[i], Prob: probs[i]})
	}
	var gs [][]andxor.Alternative
	for _, l := range order {
		for range byLabel[l] {
			leafLabels = append(leafLabels, l)
		}
		gs = append(gs, byLabel[l])
	}
	tree, err := andxor.XTuples(gs)
	if err != nil {
		return nil, nil, nil, err
	}
	return nil, leafLabels, tree, nil
}

// rankTree handles the grouped (x-tuples) path.
func rankTree(tree *andxor.Tree, labels []string, fn string, alpha float64, h, k int, withVals bool) error {
	n := tree.Len()
	if k > n {
		k = n
	}
	var ranking pdb.Ranking
	values := map[pdb.TupleID]float64{}
	switch fn {
	case "prfe":
		vals := core.AbsParts(andxor.PRFeValues(tree, complex(alpha, 0)))
		ranking = pdb.RankByValue(vals).TopK(k)
		for id, v := range vals {
			values[pdb.TupleID(id)] = v
		}
	case "pt":
		vals := andxor.PTh(tree, h)
		ranking = pdb.RankByValue(vals).TopK(k)
		for id, v := range vals {
			values[pdb.TupleID(id)] = v
		}
	case "erank":
		vals := andxor.ExpectedRanks(tree)
		ranking = baselines.ERankRanking(vals).TopK(k)
		for id, v := range vals {
			values[pdb.TupleID(id)] = v
		}
	case "urank":
		ranking = baselines.URankTree(tree, k)
	default:
		return fmt.Errorf("function %q is not available with a group column (use prfe|pt|erank|urank)", fn)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-6s %-10s %-12s %-12s", "rank", "group", "score", "prob")
	if withVals {
		fmt.Fprintf(w, " %-14s", "value")
	}
	fmt.Fprintln(w)
	for pos, id := range ranking {
		t := tree.Leaf(id)
		fmt.Fprintf(w, "%-6d %-10s %-12g %-12g", pos+1, labels[id], t.Score, t.Prob)
		if withVals {
			if v, ok := values[id]; ok {
				fmt.Fprintf(w, " %-14g", v)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
