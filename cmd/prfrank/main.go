// Command prfrank ranks a probabilistic dataset from a CSV file of
// "score,probability[,group]" rows using any of the implemented ranking
// functions. When a third column is present, rows sharing a group label are
// treated as mutually exclusive alternatives (the x-tuples model) and the
// tree-aware algorithms are used.
//
// Usage:
//
//	prfrank -in data.csv -func prfe -alpha 0.95 -k 10
//	prfrank -in data.csv -func pt -h 100 -k 10
//	prfrank -in xdata.csv -func urank -k 10      # with a group column
//
// Functions: prfe (default), pt, erank, escore, urank, utop, kselection,
// prob, score, consensus.
//
// The PRF-family functions (prfe, pt, erank) run through the unified Ranker
// engine, so one code path serves both the independent and the x-tuple
// model — the engine dispatches to the model's fastest kernel. The
// remaining baseline semantics are independent-model only, except urank
// which also has a tree algorithm. With -values, PRFe prints |Υ_α| for both
// models.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math/cmplx"
	"os"
	"strconv"

	"repro/internal/andxor"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pdb"
)

func main() {
	var (
		in       = flag.String("in", "-", "input CSV of score,probability rows (\"-\" for stdin)")
		fn       = flag.String("func", "prfe", "ranking function: prfe|pt|erank|escore|urank|utop|kselection|prob|score|consensus")
		alpha    = flag.Float64("alpha", 0.95, "PRFe parameter α")
		h        = flag.Int("h", 100, "PT(h) depth")
		k        = flag.Int("k", 10, "answer size")
		withVals = flag.Bool("values", false, "print ranking values alongside tuples")
	)
	flag.Parse()

	if err := run(*in, *fn, *alpha, *h, *k, *withVals); err != nil {
		fmt.Fprintln(os.Stderr, "prfrank:", err)
		os.Exit(1)
	}
}

func run(in, fn string, alpha float64, h, k int, withVals bool) error {
	d, labels, tree, err := readInput(in)
	if err != nil {
		return err
	}

	// Tuple lookup for printing.
	var (
		n        int
		idHeader string
		describe func(id pdb.TupleID) (name string, tu pdb.Tuple)
	)
	if tree != nil {
		n = tree.Len()
		idHeader = "group"
		describe = func(id pdb.TupleID) (string, pdb.Tuple) { return labels[id], tree.Leaf(id) }
	} else {
		if d.Len() == 0 {
			return fmt.Errorf("empty input")
		}
		n = d.Len()
		idHeader = "tuple"
		describe = func(id pdb.TupleID) (string, pdb.Tuple) {
			tu, _ := d.ByID(id)
			return strconv.Itoa(int(id)), tu
		}
	}
	if k > n {
		k = n
	}

	var ranking pdb.Ranking
	values := map[pdb.TupleID]float64{}
	note := ""

	if q, unified := queryFor(fn, alpha, h, k); unified {
		// One unified engine serves the PRF family on either model (built
		// here so the baseline functions below skip the prepare).
		var eng *engine.Engine
		if tree != nil {
			eng = engine.New(andxor.PrepareTree(tree))
		} else {
			eng = engine.New(core.Prepare(d))
		}
		ctx := context.Background()
		if withVals {
			vq := q
			vq.Output = engine.OutputValues
			vres, err := eng.Rank(ctx, vq)
			if err != nil {
				return err
			}
			// For the real-valued metrics the printed values determine the
			// ranking, so derive it locally (identical in order to the
			// engine's own ranking) and keep the heavy kernel to one run.
			// PRFe's ranking comes from the engine instead: its raw Υ values
			// can underflow to 0 where the engine's log-domain ranking still
			// distinguishes tuples, and the extra ranking query is one cheap
			// evaluation on every backend.
			switch {
			case vres.Values != nil && q.Metric == engine.MetricERank:
				ranking = baselines.ERankRanking(vres.Values).TopK(k)
			case vres.Values != nil:
				ranking = pdb.RankByValue(vres.Values).TopK(k)
			default:
				res, err := eng.Rank(ctx, q)
				if err != nil {
					return err
				}
				ranking = res.Ranking
			}
			for id := 0; id < n; id++ {
				if vres.Values != nil {
					values[pdb.TupleID(id)] = vres.Values[id]
				} else {
					values[pdb.TupleID(id)] = cmplx.Abs(vres.Complex[id])
				}
			}
		} else {
			res, err := eng.Rank(ctx, q)
			if err != nil {
				return err
			}
			ranking = res.Ranking
		}
	} else {
		// Baseline semantics outside the PRF family keep their
		// model-specific algorithms.
		ranking, values, note, err = baseline(fn, d, tree, k)
		if err != nil {
			return err
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if note != "" {
		fmt.Fprintln(w, note)
	}
	fmt.Fprintf(w, "%-6s %-10s %-12s %-12s", "rank", idHeader, "score", "prob")
	if withVals {
		fmt.Fprintf(w, " %-14s", "value")
	}
	fmt.Fprintln(w)
	for pos, id := range ranking {
		name, tu := describe(id)
		fmt.Fprintf(w, "%-6d %-10s %-12g %-12g", pos+1, name, tu.Score, tu.Prob)
		if withVals {
			if v, ok := values[id]; ok {
				fmt.Fprintf(w, " %-14g", v)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// queryFor maps the PRF-family function names onto unified-engine queries;
// unified is false for the baseline semantics.
func queryFor(fn string, alpha float64, h, k int) (engine.Query, bool) {
	q := engine.Query{Output: engine.OutputTopK, K: k}
	switch fn {
	case "prfe":
		q.Metric = engine.MetricPRFe
		q.Alpha = alpha
	case "pt":
		q.Metric = engine.MetricPTh
		q.H = h
	case "erank":
		q.Metric = engine.MetricERank
	default:
		return engine.Query{}, false
	}
	return q, true
}

// baseline evaluates the pre-PRF semantics, which have no unified engine
// metric: most exist only for the independent model, urank also for trees.
func baseline(fn string, d *pdb.Dataset, tree *andxor.Tree, k int) (pdb.Ranking, map[pdb.TupleID]float64, string, error) {
	values := map[pdb.TupleID]float64{}
	if tree != nil {
		if fn == "urank" {
			set, err := baselines.URankTree(tree, k)
			return set, values, "", err
		}
		return nil, nil, "", fmt.Errorf("function %q is not available with a group column (use prfe|pt|erank|urank)", fn)
	}
	// Built lazily so the order-insensitive functions skip the sort.
	var lazyView *core.Prepared
	view := func() *core.Prepared {
		if lazyView == nil {
			lazyView = core.Prepare(d)
		}
		return lazyView
	}
	byValue := func(vals []float64) pdb.Ranking {
		for id, v := range vals {
			values[pdb.TupleID(id)] = v
		}
		return pdb.RankByValue(vals).TopK(k)
	}
	switch fn {
	case "escore":
		return byValue(baselines.EScore(d)), values, "", nil
	case "urank":
		set, err := baselines.URankPrepared(view(), k)
		return set, values, "", err
	case "utop":
		set, p, err := baselines.UTopKPrepared(view(), k)
		if err != nil {
			return nil, nil, "", err
		}
		return set, values, fmt.Sprintf("# U-Top answer probability: %g", p), nil
	case "kselection":
		set, v, err := baselines.KSelectionPrepared(view(), k)
		if err != nil {
			return nil, nil, "", err
		}
		return set, values, fmt.Sprintf("# expected best score: %g", v), nil
	case "prob":
		return byValue(baselines.ByProbability(d)), values, "", nil
	case "score":
		return byValue(baselines.ByScore(d)), values, "", nil
	case "consensus":
		return baselines.ConsensusTopK(d, k), values, "", nil
	default:
		return nil, nil, "", fmt.Errorf("unknown function %q", fn)
	}
}

// readInput parses score,probability[,group] rows. Without a group column
// it returns an independent dataset; with one it returns the x-tuple tree
// and the per-leaf group labels.
func readInput(path string) (*pdb.Dataset, []string, *andxor.Tree, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, err
		}
		defer f.Close()
		r = f
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var scores, probs []float64
	var labels []string
	grouped := false
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, err
		}
		line++
		if len(rec) < 2 {
			return nil, nil, nil, fmt.Errorf("line %d: need score,probability", line)
		}
		if line == 1 && !isNumeric(rec[0]) {
			continue // header row
		}
		s, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: bad score %q", line, rec[0])
		}
		p, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: bad probability %q", line, rec[1])
		}
		scores = append(scores, s)
		probs = append(probs, p)
		if len(rec) >= 3 && rec[2] != "" {
			grouped = true
			labels = append(labels, rec[2])
		} else {
			labels = append(labels, "")
		}
	}
	if !grouped {
		d, err := pdb.NewDataset(scores, probs)
		return d, nil, nil, err
	}
	// The shared CSV-to-x-relation convention lives in andxor.GroupRows so
	// this CLI and the serving layer group identically.
	gs, leafLabels := andxor.GroupRows(scores, probs, labels)
	tree, err := andxor.XTuples(gs)
	if err != nil {
		return nil, nil, nil, err
	}
	return nil, leafLabels, tree, nil
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
