package prf_test

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	prf "repro"
)

// figure1 builds the paper's running-example traffic database as a tree.
func figure1(t *testing.T) *prf.Tree {
	t.Helper()
	tree, err := prf.NewTree(prf.NewAnd(
		prf.NewXor([]float64{0.4}, prf.NewLeaf(120)),
		prf.NewXor([]float64{0.7, 0.3}, prf.NewLeaf(130), prf.NewLeaf(80)),
		prf.NewXor([]float64{0.4, 0.6}, prf.NewLeaf(95), prf.NewLeaf(110)),
		prf.NewXor([]float64{1.0}, prf.NewLeaf(105)),
	))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPublicAPIIndependentPipeline(t *testing.T) {
	d, err := prf.NewDataset(
		[]float64{100, 80, 50, 30},
		[]float64{0.4, 0.6, 0.5, 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	// PRFe ranking at the extremes (Example 7).
	r0 := prf.RankPRFe(d, 1e-9)
	if r0[0] != 0 {
		t.Fatalf("α→0 should rank t1 first: %v", r0)
	}
	r1 := prf.RankPRFe(d, 1)
	if r1[0] != 3 {
		t.Fatalf("α=1 should rank t4 first: %v", r1)
	}
	// Rank distribution sums to presence probabilities.
	rd := prf.RankDistribution(d)
	for _, tu := range d.Tuples() {
		if math.Abs(rd.PresenceProb(tu.ID)-tu.Prob) > 1e-9 {
			t.Fatalf("presence mismatch for %v", tu)
		}
	}
	// PT, PRF, PRFOmega agree on step weights.
	pt := prf.PTh(d, 2)
	po := prf.PRFOmega(d, []float64{1, 1})
	pg := prf.PRF(d, func(_ prf.Tuple, i int) float64 {
		if i <= 2 {
			return 1
		}
		return 0
	})
	for i := range pt {
		if math.Abs(pt[i]-po[i]) > 1e-12 || math.Abs(pt[i]-pg[i]) > 1e-12 {
			t.Fatalf("PT/PRFω/PRF disagree at %d: %v %v %v", i, pt[i], po[i], pg[i])
		}
	}
	// Baselines run and produce sane shapes.
	if got := prf.TopK(prf.EScore(d), 2); len(got) != 2 {
		t.Fatalf("EScore TopK: %v", got)
	}
	if got, err := prf.URank(d, 3); err != nil || len(got) != 3 {
		t.Fatalf("URank: %v %v", got, err)
	}
	if set, p, err := prf.UTopK(d, 2); err != nil || len(set) != 2 || p <= 0 || p > 1 {
		t.Fatalf("UTopK: %v %v %v", set, p, err)
	}
	if set, v, err := prf.KSelection(d, 2); err != nil || len(set) != 2 || v <= 0 {
		t.Fatalf("KSelection: %v %v %v", set, v, err)
	}
	er := prf.ERank(d)
	if len(prf.ERankRanking(er)) != 4 {
		t.Fatal("ERankRanking size")
	}
	// Consensus (Theorem 2) minimizes the expected symmetric difference.
	tau := prf.ConsensusTopK(d, 2)
	best := prf.ExpectedSymDiff(d, tau)
	other := prf.Ranking{2, 3}
	if prf.ExpectedSymDiff(d, other) < best-1e-12 {
		t.Fatal("consensus answer not optimal")
	}
	// Crossing points (Theorem 4).
	if _, ok := prf.CrossingPoint(d, 0, 3); !ok {
		t.Fatal("expected t1/t4 crossing")
	}
	// Metrics.
	if prf.KendallTopK(tau, tau, 2) != 0 || prf.IntersectionMetric(tau, tau, 2) != 0 {
		t.Fatal("self distance must be 0")
	}
	if prf.KendallFull(r0, r0) != 0 {
		t.Fatal("full self distance must be 0")
	}
	if prf.FootruleTopK(tau, tau, 2) != 0 {
		t.Fatal("footrule self distance must be 0")
	}
}

func TestPublicAPITreePipeline(t *testing.T) {
	tree := figure1(t)
	// Example 4: Pr(r(t4)=3) = 0.216.
	rd := prf.TreeRankDistribution(tree)
	if got := rd.At(3, 3); math.Abs(got-0.216) > 1e-12 {
		t.Fatalf("Pr(r(t4)=3) = %v", got)
	}
	// PRFe incremental vs truncated PRFω consistency.
	vals := prf.TreePRFe(tree, complex(0.8, 0))
	full := prf.TreePRF(tree, func(_ prf.Tuple, i int) float64 {
		return math.Pow(0.8, float64(i))
	})
	for i := range vals {
		if math.Abs(real(vals[i])-full[i]) > 1e-9 {
			t.Fatalf("tree PRFe mismatch at %d", i)
		}
	}
	if got := prf.TreeRankPRFe(tree, 0.8); len(got) != 6 {
		t.Fatalf("tree ranking: %v", got)
	}
	if got := prf.TreePTh(tree, 2); len(got) != 6 {
		t.Fatalf("tree PT: %v", got)
	}
	if got, err := prf.URankTree(tree, 2); err != nil || len(got) != 2 {
		t.Fatalf("tree URank: %v %v", got, err)
	}
	if got := prf.TreeExpectedRanks(tree); len(got) != 6 {
		t.Fatalf("tree ERank: %v", got)
	}
	sd := prf.TreeSizeDistribution(tree)
	var sum float64
	for _, p := range sd {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("size distribution sums to %v", sum)
	}
	// Consensus on trees (Example 6, corrected): {t2, t5}, E = 1.736.
	tau := prf.ConsensusTopKTree(tree, 2)
	want := map[prf.TupleID]bool{1: true, 4: true}
	if !want[tau[0]] || !want[tau[1]] {
		t.Fatalf("tree consensus: %v", tau)
	}
	// Monte-Carlo U-Top returns a plausible 2-set.
	rng := rand.New(rand.NewSource(1))
	mc := prf.UTopKMonteCarloTree(tree, 2, 5000, rng)
	if len(mc) != 2 {
		t.Fatalf("MC UTop: %v", mc)
	}
	// Worlds round-trip via TreeFromWorlds.
	tree2, ids, err := prf.TreeFromWorlds(
		[][]prf.Alternative{{{Score: 6}, {Score: 5}}, {{Score: 9}}},
		[]float64{0.6, 0.4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Len() != 3 || len(ids) != 2 {
		t.Fatalf("FromWorlds: %d leaves", tree2.Len())
	}
}

func TestPublicAPIUncertainScores(t *testing.T) {
	groups := [][]prf.Alternative{
		{{Score: 10, Prob: 0.5}, {Score: 4, Prob: 0.3}},
		{{Score: 8, Prob: 0.9}},
	}
	vals, err := prf.PRFeUncertainScores(groups, complex(0.9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("uncertain scores: %v", vals)
	}
	pv, err := prf.PRFUncertainScores(groups, func(_ prf.Tuple, i int) float64 {
		if i == 1 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if pv[0] < 0 || pv[0] > 1 || pv[1] < 0 || pv[1] > 1 {
		t.Fatalf("Pr(rank 1) out of range: %v", pv)
	}
}

func TestPublicAPIApproximationAndLearning(t *testing.T) {
	// Approximate PT(50) by 20 exponentials and rank with the combo.
	scores := make([]float64, 400)
	probs := make([]float64, 400)
	rng := rand.New(rand.NewSource(2))
	for i := range scores {
		scores[i] = rng.Float64() * 1000
		probs[i] = rng.Float64()
	}
	d, err := prf.NewDataset(scores, probs)
	if err != nil {
		t.Fatal(err)
	}
	terms := prf.ApproximateWeights(prf.StepWeights(50), 50, prf.DefaultApproxOptions(20))
	if len(terms) == 0 {
		t.Fatal("no approximation terms")
	}
	combo := prf.PRFeCombo(d, prf.ApproxPRFeTerms(terms))
	approx := prf.RankByValue(prf.RealParts(combo))
	exact := prf.RankByValue(prf.PTh(d, 50))
	if dist := prf.KendallTopK(approx.TopK(50), exact.TopK(50), 50); dist > 0.2 {
		t.Fatalf("approximation distance %v", dist)
	}
	// Learn α back from a PRFe-generated ranking.
	user := prf.RankPRFe(d, 0.9)
	res := prf.LearnAlpha(d, user, 50, 8)
	if res.Distance > 1e-9 {
		t.Fatalf("LearnAlpha distance %v", res.Distance)
	}
	// Learn PRFω weights from the same preferences.
	w := prf.LearnOmega(d, user, prf.OmegaOptions{H: 25, Iters: 200})
	if len(w) != 25 {
		t.Fatalf("LearnOmega weights: %d", len(w))
	}
}

func TestPublicAPIMarkovNetwork(t *testing.T) {
	// Three positively correlated tuples on a chain.
	net, err := prf.NewMarkovNetwork(
		[]float64{30, 20, 10},
		[]prf.MarkovFactor{
			{Vars: []int{0}, Table: []float64{0.5, 0.5}},
			{Vars: []int{1}, Table: []float64{0.5, 0.5}},
			{Vars: []int{2}, Table: []float64{0.5, 0.5}},
			{Vars: []int{0, 1}, Table: []float64{2, 1, 1, 2}},
			{Vars: []int{1, 2}, Table: []float64{2, 1, 1, 2}},
		})
	if err != nil {
		t.Fatal(err)
	}
	jt, err := prf.BuildJunctionTree(net)
	if err != nil {
		t.Fatal(err)
	}
	if jt.Treewidth() != 1 {
		t.Fatalf("treewidth %d", jt.Treewidth())
	}
	rd, err := prf.NetworkRankDistribution(net)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for j := 1; j <= 3; j++ {
		total += rd.At(0, j)
	}
	if math.Abs(total-jt.VariableMarginal(0)) > 1e-9 {
		t.Fatalf("rank distribution inconsistent with marginal: %v vs %v",
			total, jt.VariableMarginal(0))
	}
	if _, err := prf.NetworkPRFe(net, complex(0.9, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := prf.NetworkPRF(net, func(_ prf.Tuple, i int) float64 { return 1 / float64(i) }); err != nil {
		t.Fatal(err)
	}
	// Chain model.
	chain, err := prf.NewMarkovChain([]float64{3, 2},
		[][2][2]float64{{{0.2, 0.3}, {0.1, 0.4}}})
	if err != nil {
		t.Fatal(err)
	}
	crd := chain.RankDistribution()
	if got := crd.At(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("chain Pr(r(t0)=1) = %v, want 0.5", got)
	}
}

func TestPublicAPIWorldsAndSampling(t *testing.T) {
	d, _ := prf.NewDataset([]float64{2, 1}, []float64{0.5, 0.5})
	worlds, err := prf.EnumerateWorlds(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 4 {
		t.Fatalf("worlds: %d", len(worlds))
	}
	rng := rand.New(rand.NewSource(3))
	w := prf.SampleWorld(d, rng)
	if len(w.Present) > 2 {
		t.Fatalf("sampled world: %v", w)
	}
	ts := []prf.Tuple{{Score: 5, Prob: 0.5}, {Score: 7, Prob: 0.25}}
	d2, err := prf.FromTuples(ts)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 2 || d2.Tuple(1).ID != 1 {
		t.Fatal("FromTuples IDs")
	}
}

func TestPublicAPIPRFlAndWeights(t *testing.T) {
	d, _ := prf.NewDataset([]float64{10, 5}, []float64{0.5, 0.8})
	l := prf.PRFl(d)
	// er1(t0) = .5·1, er1(t1) = .8·1.5; PRFl is the negation.
	if math.Abs(l[0]+0.5) > 1e-12 || math.Abs(l[1]+1.2) > 1e-12 {
		t.Fatalf("PRFl = %v", l)
	}
	er1, er2 := prf.ExpectedRankDecomposition(d)
	er := prf.ERank(d)
	for i := range er {
		if math.Abs(er1[i]+er2[i]-er[i]) > 1e-12 {
			t.Fatalf("decomposition mismatch at %d", i)
		}
	}
	if prf.LinearWeights(5)(0) != 5 || prf.SmoothWeights(10)(10) != 0 {
		t.Fatal("weight helpers wrong")
	}
	if ld := prf.LogDiscountWeights(10); math.Abs(ld(0)-1) > 1e-12 {
		t.Fatal("log discount wrong")
	}
	if got := prf.SpectrumSizeGrid(d, 50); got < 1 {
		t.Fatalf("sampled spectrum size %d", got)
	}
	if exact := prf.SpectrumSize(d); exact < prf.SpectrumSizeGrid(d, 50) {
		t.Fatalf("exact spectrum %d below sampled count", exact)
	}
}

func TestPublicAPIKeyAggregationAndNetworkERank(t *testing.T) {
	tree, _, err := prf.TreeFromWorlds(
		[][]prf.Alternative{{{Score: 6}, {Score: 5}}, {{Score: 9}}},
		[]float64{0.6, 0.4},
		[][]string{{"a", "b"}, {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := prf.TreeRankByKey(tree, complex(0.9, 0))
	if len(keys) != 2 || len(vals) != 2 {
		t.Fatalf("keys %v vals %v", keys, vals)
	}
	if keys[0] != "a" {
		t.Fatalf("key 'a' (present in both worlds) should rank first: %v", keys)
	}
	net, err := prf.NewMarkovNetwork([]float64{2, 1}, []prf.MarkovFactor{
		{Vars: []int{0}, Table: []float64{0.5, 0.5}},
		{Vars: []int{1}, Table: []float64{0.2, 0.8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	er, err := prf.NetworkExpectedRanks(net)
	if err != nil {
		t.Fatal(err)
	}
	// Independent 2-tuple case cross-check against the closed form.
	d, _ := prf.NewDataset([]float64{2, 1}, []float64{0.5, 0.8})
	want := prf.ERank(d)
	for i := range er {
		if math.Abs(er[i]-want[i]) > 1e-9 {
			t.Fatalf("network E-Rank %v vs closed form %v", er, want)
		}
	}
}

// TestServeFacade exercises the public serving surface: NewRankServer +
// AddDataset answer HTTP queries identically to the engine, NewCachedEngine
// memoizes, and prf.Serve shuts down cleanly on context cancellation.
func TestServeFacade(t *testing.T) {
	d, err := prf.NewDataset(
		[]float64{100, 80, 50, 30},
		[]float64{0.4, 0.6, 0.5, 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := prf.NewRankServer(prf.ServeOptions{DefaultTimeout: 5 * time.Second})
	if err := srv.AddDataset("demo", prf.EngineFor(d)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/rank", "application/json", strings.NewReader(
		`{"dataset": "demo", "query": {"metric": "prfe", "alpha": 0.5, "output": "ranking"}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Ranking prf.Ranking `json:"ranking"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := prf.RankPRFe(d, 0.5)
	if len(got.Ranking) != len(want) {
		t.Fatalf("ranking %v, want %v", got.Ranking, want)
	}
	for i := range want {
		if got.Ranking[i] != want[i] {
			t.Fatalf("ranking %v, want %v", got.Ranking, want)
		}
	}

	// prf.Serve: clean shutdown on ctx cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- prf.Serve(ctx, "127.0.0.1:0", srv) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not shut down")
	}
}
