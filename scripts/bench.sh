#!/usr/bin/env bash
# Run the repeated-query benchmark suite and record the perf trajectory.
# The full report also embeds a quick-measured smoke-size section, which
# scripts/benchdiff.sh uses as the size-for-size regression baseline.
# Usage: scripts/bench.sh [OUT.json]   (default: BENCH_6.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_6.json}"
go run ./cmd/bench -out "$out"
