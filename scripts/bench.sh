#!/usr/bin/env bash
# Run the repeated-query benchmark suite and record the perf trajectory.
# Usage: scripts/bench.sh [OUT.json]   (default: BENCH_4.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_4.json}"
go run ./cmd/bench -out "$out"
