#!/usr/bin/env bash
# Run the repeated-query benchmark suite and record the perf trajectory.
# The full report also embeds a quick-measured smoke-size section, which
# scripts/benchdiff.sh uses as the size-for-size regression baseline.
# The report now also carries the multi-core trajectory sections (the
# sharded kernels at forced GOMAXPROCS settings over a large dataset) and
# the learning-workload arm (learn/alpha-fit: the Section 5.2 recursive
# α refinement over the engine's Ranker interface), and the consensus-
# semantics arms (semantics/*: Global-Topk, Expected-Rank and Median-Rank
# through the unified engine).
# Usage: scripts/bench.sh [OUT.json]   (default: BENCH_9.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_9.json}"
go run ./cmd/bench -out "$out"
