#!/usr/bin/env bash
# Benchmark regression gate: quick-measure the suite at smoke sizes
# (`cmd/bench -smoke -out`) and compare it against the newest checked-in
# BENCH_*.json with `cmd/bench -diff`. Dimensionless speedup ratios are the
# gated signal (they survive machine changes between the baseline and CI);
# the gate is deliberately generous — warn-only annotations for drift, a
# non-zero exit only for >5x regressions — so perf rot is visible per PR
# without flaking on runner noise. BENCH files since BENCH_5 embed a
# quick-measured smoke section, making the comparison size-for-size.
# Multi-core trajectory sections follow the like-parallelism rule: an entry
# hard-compares only against a baseline measured at the same GOMAXPROCS and
# shard parallelism; any other pairing demotes to a warning.
#
# Usage:
#   scripts/benchdiff.sh                 # baseline = newest BENCH_*.json
#   scripts/benchdiff.sh BENCH_4.json    # explicit baseline
#   scripts/benchdiff.sh BASE NEW.json   # compare an existing report
# Env: BENCHDIFF_FAIL_RATIO (default 5), BENCHDIFF_WARN_RATIO (default 1.5).
set -euo pipefail
cd "$(dirname "$0")/.."

base="${1:-}"
if [ -z "$base" ]; then
  base="$(ls BENCH_*.json | sort -V | tail -n1)"
fi
[ -f "$base" ] || { echo "benchdiff: no baseline report ($base)" >&2; exit 1; }

new="${2:-}"
tmp=""
if [ -z "$new" ]; then
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  new="$tmp/bench_smoke.json"
  echo "benchdiff: quick-measuring the suite at smoke sizes…"
  go run ./cmd/bench -smoke -out "$new" > /dev/null
fi

go run ./cmd/bench -diff \
  -warn-ratio "${BENCHDIFF_WARN_RATIO:-1.5}" \
  -fail-ratio "${BENCHDIFF_FAIL_RATIO:-5}" \
  "$base" "$new"
