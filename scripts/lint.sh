#!/usr/bin/env bash
# Run prflint — the repo's own go/analysis suite — over the whole module,
# exactly as the CI prflint job does: build cmd/prflint, then drive it
# through `go vet -vettool` so analysis runs per compilation unit with
# package facts (cachekeycover's Query inventory) flowing dependency-first.
#
# Findings print as `file:line:col: message [analyzer]` and exit non-zero.
# A finding is silenced only by an explicit annotation carrying a reason:
#   //lint:allow <analyzer> <reason>        one line
#   //lint:file-allow <analyzer> <reason>   whole file
# Reasonless suppressions are themselves reported, so the escape hatch
# cannot rot into a blanket mute.
#
# Usage: scripts/lint.sh [packages...]   (default: ./...)
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/prflint" ./cmd/prflint
go vet -vettool="$tmp/prflint" "${@:-./...}"
