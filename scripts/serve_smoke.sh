#!/usr/bin/env bash
# End-to-end smoke test of the serving layer: build cmd/prfserve, start it
# on fixture datasets (an independent CSV and an x-relation CSV), curl a
# PRFe query, a top-k query and a batch α-sweep, and assert the HTTP JSON
# responses are byte-identical to Engine.Rank run in-process (the
# `prfserve -oneshot` path evaluates the same request straight through the
# engine, no HTTP, no cache). Also diffs the gzip-negotiated response
# (after decompression) and the streamed response (after reassembly)
# against the buffered body, checks the error statuses (including the 415
# Content-Type gate) and that both the result cache and the response-byte
# cache register hits for repeated queries.
#
# Usage: scripts/serve_smoke.sh
# Runs in CI (serve-smoke job) and locally; needs only go and curl.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/prfserve" ./cmd/prfserve
go run ./cmd/datagen -kind iip -n 500 -seed 7 > "$tmp/iip.csv"
cat > "$tmp/sensors.csv" <<'EOF'
score,probability,group
120,0.4,s1
130,0.7,s2
80,0.3,s2
95,0.4,s3
110,0.6,s3
105,1.0,
EOF
data_flags=(-data "iip=ind:$tmp/iip.csv" -data "sensors=xrel:$tmp/sensors.csv")

echo "== start server"
"$tmp/prfserve" "${data_flags[@]}" -listen 127.0.0.1:0 -addr-file "$tmp/addr" &
server_pid=$!
for _ in $(seq 1 50); do
  [ -s "$tmp/addr" ] && break
  sleep 0.1
done
addr="$(head -n1 "$tmp/addr")"
[ -n "$addr" ] || { echo "server did not write its address" >&2; exit 1; }
curl -sf "http://$addr/healthz" > /dev/null
echo "   listening on $addr"

# POST bodies must declare their media type now that the server enforces it.
json=(-H 'Content-Type: application/json')

# check NAME REQUEST_JSON [ENDPOINT]: curl the request and diff the body
# against the in-process evaluation of the same request.
check() {
  local name="$1" req="$2" endpoint="${3:-rank}"
  printf '%s' "$req" > "$tmp/req.json"
  curl -sf "${json[@]}" "http://$addr/$endpoint" -d @"$tmp/req.json" > "$tmp/got.json"
  "$tmp/prfserve" "${data_flags[@]}" -oneshot -req "$tmp/req.json" > "$tmp/want.json"
  if ! diff -u "$tmp/want.json" "$tmp/got.json"; then
    echo "FAIL: $name: HTTP response differs from in-process Engine.Rank" >&2
    exit 1
  fi
  # The repeated (now cache-served) request must stay byte-identical.
  curl -sf "${json[@]}" "http://$addr/$endpoint" -d @"$tmp/req.json" > "$tmp/got2.json"
  cmp -s "$tmp/got.json" "$tmp/got2.json" || {
    echo "FAIL: $name: cached repeat differs from first answer" >&2; exit 1; }
  echo "   ok: $name"
}

echo "== queries: HTTP vs in-process engine"
check "prfe values"            '{"dataset": "iip", "query": {"metric": "prfe", "alpha": 0.95}}'
check "prfe top-k"             '{"dataset": "iip", "query": {"metric": "prfe", "alpha": 0.95, "output": "topk", "k": 10}}'
check "batch α-sweep"          '{"dataset": "iip", "query": {"metric": "prfe", "alphas": [0.2, 0.5, 0.8, 0.95], "output": "ranking"}}' rankbatch
check "x-relation prfe top-k"  '{"dataset": "sensors", "query": {"metric": "prfe", "alpha": 0.9, "output": "topk", "k": 3}}'
check "pt(h) ranking"          '{"dataset": "iip", "query": {"metric": "pth", "h": 20, "output": "ranking"}}'

echo "== wire variants: gzip and streamed vs buffered"
sweep='{"dataset": "iip", "query": {"metric": "prfe", "alphas": [0.2, 0.5, 0.8, 0.95], "output": "ranking"}}'
printf '%s' "$sweep" > "$tmp/sweep.json"
curl -sf "${json[@]}" "http://$addr/rankbatch" -d @"$tmp/sweep.json" > "$tmp/buffered.json"
# gzip negotiated: the raw bytes on the wire are a gzip stream; after
# decompression they must be byte-identical to the buffered body.
curl -sf "${json[@]}" -H 'Accept-Encoding: gzip' -D "$tmp/gz.headers" \
  "http://$addr/rankbatch" -d @"$tmp/sweep.json" -o "$tmp/body.gz"
grep -qi '^content-encoding: gzip' "$tmp/gz.headers" || {
  echo "FAIL: gzip was not negotiated:" >&2; cat "$tmp/gz.headers" >&2; exit 1; }
gzip -dc "$tmp/body.gz" > "$tmp/gunzipped.json"
diff -u "$tmp/buffered.json" "$tmp/gunzipped.json" || {
  echo "FAIL: gunzipped response differs from buffered body" >&2; exit 1; }
echo "   ok: gzip round trip is byte-identical after decompression"
# streamed: chunked per-grid-point emission; the reassembled body must be
# byte-identical to the buffered one.
printf '%s' "${sweep%\}}, \"stream\": true}" > "$tmp/stream.json"
curl -sf "${json[@]}" -D "$tmp/stream.headers" \
  "http://$addr/rankbatch" -d @"$tmp/stream.json" > "$tmp/streamed.json"
grep -qi '^transfer-encoding: chunked' "$tmp/stream.headers" || {
  echo "FAIL: streamed response was not chunked:" >&2; cat "$tmp/stream.headers" >&2; exit 1; }
diff -u "$tmp/buffered.json" "$tmp/streamed.json" || {
  echo "FAIL: reassembled stream differs from buffered body" >&2; exit 1; }
echo "   ok: streamed round trip is byte-identical after reassembly"

echo "== error statuses"
expect_status() {
  local name="$1" want="$2" got
  got="$(cat)"
  [ "$got" = "$want" ] || { echo "FAIL: $name: status $got, want $want" >&2; exit 1; }
  echo "   ok: $name ($want)"
}
curl -s -o /dev/null -w '%{http_code}' "${json[@]}" "http://$addr/rank" -d '{"dataset": "nope", "query": {"metric": "prfe"}}' \
  | expect_status "unknown dataset" 404
curl -s -o /dev/null -w '%{http_code}' "${json[@]}" "http://$addr/rank" -d '{"dataset": "iip", ' \
  | expect_status "malformed JSON" 400
curl -s -o /dev/null -w '%{http_code}' "${json[@]}" "http://$addr/rank" -d '{"dataset": "iip", "query": {"metric": "magic"}}' \
  | expect_status "unknown metric" 400
curl -s -o /dev/null -w '%{http_code}' -X GET "http://$addr/rank" \
  | expect_status "wrong method" 405
# curl -d without a header posts x-www-form-urlencoded: the typed 415 gate.
curl -s -o /dev/null -w '%{http_code}' "http://$addr/rank" -d '{"dataset": "iip", "query": {"metric": "prfe"}}' \
  | expect_status "non-JSON content type" 415

echo "== cache counters"
stats="$(curl -sf "http://$addr/stats")"
echo "$stats" | grep -q '"hits":' || { echo "FAIL: /stats has no hit counters: $stats" >&2; exit 1; }
# Every check() repeated its query once, so hits must be strictly positive.
hits="$(printf '%s' "$stats" | sed -n 's/.*"hits":[[:space:]]*\([0-9][0-9]*\).*/\1/p' | head -n1)"
[ -n "$hits" ] && [ "$hits" -gt 0 ] || { echo "FAIL: cache reported no hits: $stats" >&2; exit 1; }
echo "   ok: cache hits = $hits"
echo "$stats" | grep -q '"byte_cache"' || { echo "FAIL: /stats has no byte_cache block: $stats" >&2; exit 1; }
bhits="$(printf '%s' "$stats" | jq '[.datasets[].byte_cache.hits] | add')"
[ -n "$bhits" ] && [ "$bhits" -gt 0 ] || { echo "FAIL: byte cache reported no hits: $stats" >&2; exit 1; }
echo "   ok: byte-cache hits = $bhits"

echo "== graceful shutdown"
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo
echo "serve smoke: all checks passed"
