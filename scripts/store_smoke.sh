#!/usr/bin/env bash
# End-to-end smoke test of the dataset lifecycle: import fixture datasets
# into a segment store with cmd/prfstore, start cmd/prfserve on the store
# (-store, -admin-token), and certify that the store-served HTTP answers are
# byte-identical to `prfserve -oneshot` parsing the same source files
# directly — the whole encode → persist → reopen → lazy-materialize path
# must be invisible in the responses. Then exercises the admin endpoints:
# auth gates, POST replacement (generation bump + per-generation cache
# counter reset + new answers), DELETE (typed 404 afterwards), and a final
# offline `prfstore verify` over everything the server wrote.
#
# Usage: scripts/store_smoke.sh
# Runs in CI (store-smoke job) and locally; needs only go, curl and jq.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

token="store-smoke-$$"
auth=(-H "Authorization: Bearer $token")
json=(-H 'Content-Type: application/json')

echo "== build"
go build -o "$tmp/prfserve" ./cmd/prfserve
go build -o "$tmp/prfstore" ./cmd/prfstore
go run ./cmd/datagen -kind iip -n 500 -seed 7 > "$tmp/iip.csv"
go run ./cmd/datagen -kind iip -n 400 -seed 11 > "$tmp/iip2.csv"
cat > "$tmp/sensors.csv" <<'EOF'
score,probability,group
120,0.4,s1
130,0.7,s2
80,0.3,s2
95,0.4,s3
110,0.6,s3
105,1.0,
EOF

echo "== import segments offline"
"$tmp/prfstore" -store "$tmp/segs" import iip ind "$tmp/iip.csv"
"$tmp/prfstore" -store "$tmp/segs" import sensors xrel "$tmp/sensors.csv"
"$tmp/prfstore" -store "$tmp/segs" verify
"$tmp/prfstore" -store "$tmp/segs" list

echo "== start server on the store"
"$tmp/prfserve" -store "$tmp/segs" -admin-token "$token" \
  -listen 127.0.0.1:0 -addr-file "$tmp/addr" &
server_pid=$!
for _ in $(seq 1 50); do
  [ -s "$tmp/addr" ] && break
  sleep 0.1
done
addr="$(head -n1 "$tmp/addr")"
[ -n "$addr" ] || { echo "server did not write its address" >&2; exit 1; }
curl -sf "http://$addr/healthz" > /dev/null
echo "   listening on $addr"

# check NAME REQUEST_JSON ONESHOT_DATA_FLAGS...: the store-served HTTP
# answer must be byte-identical to -oneshot parsing the source file
# directly (no store involved).
check() {
  local name="$1" req="$2"
  shift 2
  printf '%s' "$req" > "$tmp/req.json"
  curl -sf "${json[@]}" "http://$addr/rank" -d @"$tmp/req.json" > "$tmp/got.json"
  "$tmp/prfserve" "$@" -oneshot -req "$tmp/req.json" > "$tmp/want.json"
  if ! diff -u "$tmp/want.json" "$tmp/got.json"; then
    echo "FAIL: $name: store-served response differs from direct parse" >&2
    exit 1
  fi
  echo "   ok: $name"
}

echo "== store-served answers vs direct parse"
check "ind prfe values"  '{"dataset": "iip", "query": {"metric": "prfe", "alpha": 0.95}}' -data "iip=ind:$tmp/iip.csv"
check "ind prfe top-k"   '{"dataset": "iip", "query": {"metric": "prfe", "alpha": 0.95, "output": "topk", "k": 10}}' -data "iip=ind:$tmp/iip.csv"
check "ind exp-rank"     '{"dataset": "iip", "query": {"metric": "erank", "output": "ranking"}}' -data "iip=ind:$tmp/iip.csv"
check "xrel prfe top-k"  '{"dataset": "sensors", "query": {"metric": "prfe", "alpha": 0.9, "output": "topk", "k": 3}}' -data "sensors=xrel:$tmp/sensors.csv"

echo "== admin auth gates"
expect_status() {
  local name="$1" want="$2" got
  got="$(cat)"
  [ "$got" = "$want" ] || { echo "FAIL: $name: status $got, want $want" >&2; exit 1; }
  echo "   ok: $name ($want)"
}
curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/datasets/iip?kind=ind" --data-binary @"$tmp/iip2.csv" \
  | expect_status "import without token" 401
curl -s -o /dev/null -w '%{http_code}' -H 'Authorization: Bearer wrong' -X DELETE "http://$addr/datasets/iip" \
  | expect_status "delete with wrong token" 401
curl -s -o /dev/null -w '%{http_code}' "${auth[@]}" -X PUT "http://$addr/datasets/iip" \
  | expect_status "wrong method on dataset path" 405

echo "== cache counters before the swap"
# Warm the caches: the repeated check() queries above already hit them.
curl -sf "${json[@]}" "http://$addr/rank" -d '{"dataset": "iip", "query": {"metric": "prfe", "alpha": 0.95}}' > /dev/null
stats="$(curl -sf "http://$addr/stats")"
gen1="$(printf '%s' "$stats" | jq -r '.datasets.iip.generation')"
hits1="$(printf '%s' "$stats" | jq -r '.datasets.iip.byte_cache.hits // 0')"
[ "$gen1" = 1 ] || { echo "FAIL: generation $gen1 before swap, want 1" >&2; exit 1; }
[ "$hits1" -gt 0 ] || { echo "FAIL: warm dataset reports no byte-cache hits" >&2; exit 1; }
echo "   ok: generation 1 serving with byte-cache hits = $hits1"

echo "== POST replacement: atomic swap to generation 2"
curl -sf "${auth[@]}" -X POST "http://$addr/datasets/iip?kind=ind" --data-binary @"$tmp/iip2.csv" > "$tmp/import.json"
jq -e '.generation == 2 and .kind == "ind"' "$tmp/import.json" > /dev/null || {
  echo "FAIL: unexpected import response: $(cat "$tmp/import.json")" >&2; exit 1; }
stats="$(curl -sf "http://$addr/stats")"
gen2="$(printf '%s' "$stats" | jq -r '.datasets.iip.generation')"
hits2="$(printf '%s' "$stats" | jq -r '.datasets.iip.byte_cache.hits // 0')"
[ "$gen2" = 2 ] || { echo "FAIL: generation $gen2 after swap, want 2" >&2; exit 1; }
[ "$hits2" = 0 ] || { echo "FAIL: byte-cache counters survived the swap (hits=$hits2)" >&2; exit 1; }
echo "   ok: generation 2 serving with fresh cache counters"
# The swapped-in view answers for the replacement file, not the original.
check "replacement answers"  '{"dataset": "iip", "query": {"metric": "prfe", "alpha": 0.95, "output": "topk", "k": 10}}' -data "iip=ind:$tmp/iip2.csv"
curl -sf "${auth[@]}" "http://$addr/datasets/iip/info" | jq -e '.generation == 2 and .tuples == 400' > /dev/null || {
  echo "FAIL: /datasets/iip/info does not reflect the swap" >&2; exit 1; }
echo "   ok: info endpoint reflects the swap"

echo "== DELETE: typed 404 afterwards"
curl -sf "${auth[@]}" -X DELETE "http://$addr/datasets/sensors" > /dev/null
resp="$(curl -s "${json[@]}" "http://$addr/rank" -d '{"dataset": "sensors", "query": {"metric": "prfe", "alpha": 0.9}}')"
printf '%s' "$resp" | jq -e '.code == "unknown_dataset"' > /dev/null || {
  echo "FAIL: query after delete was not the typed 404: $resp" >&2; exit 1; }
curl -s -o /dev/null -w '%{http_code}' "${auth[@]}" -X DELETE "http://$addr/datasets/sensors" \
  | expect_status "double delete" 404
echo "   ok: deleted dataset answers unknown_dataset"

echo "== offline verify of the store the server wrote"
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
"$tmp/prfstore" -store "$tmp/segs" verify
"$tmp/prfstore" -store "$tmp/segs" info iip | jq -e '.generation == 2' > /dev/null || {
  echo "FAIL: stored segment is not generation 2" >&2; exit 1; }

echo
echo "store smoke: all checks passed"
