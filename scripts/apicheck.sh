#!/usr/bin/env bash
# Regenerate api.txt, the snapshot of the repository's public API (the root
# facade package — the internal packages are not public surface). CI diffs
# the regenerated snapshot against the committed one, so any change to the
# exported API must be deliberate: rerun this script and commit api.txt
# alongside the change.
#
# Usage:
#   scripts/apicheck.sh          # regenerate api.txt in place
#   scripts/apicheck.sh -check   # regenerate and fail if it differs from HEAD
set -euo pipefail
cd "$(dirname "$0")/.."

go doc -all . > api.txt

if [[ "${1:-}" == "-check" ]]; then
  if ! git diff --exit-code -- api.txt; then
    echo "api.txt is stale: the public API changed without updating the snapshot." >&2
    echo "Run scripts/apicheck.sh and commit the result." >&2
    exit 1
  fi
fi
