#!/usr/bin/env bash
# Regenerate api.txt, the snapshot of the repository's public API (the root
# facade package — the internal packages are not public surface). CI diffs
# the regenerated snapshot against the committed one, so any change to the
# exported API must be deliberate: rerun this script and commit api.txt
# alongside the change.
#
# Usage:
#   scripts/apicheck.sh                # regenerate api.txt in place
#   scripts/apicheck.sh -check         # regenerate and fail if it differs from HEAD
#   scripts/apicheck.sh -out FILE      # write the snapshot elsewhere (no git diff)
set -euo pipefail
cd "$(dirname "$0")/.."

out="api.txt"
check=0
while [ $# -gt 0 ]; do
  case "$1" in
    -check) check=1; shift ;;
    -out) out="${2:?-out needs a path}"; shift 2 ;;
    *) echo "apicheck: unknown argument $1" >&2; exit 2 ;;
  esac
done

if [ "$check" = 1 ] && [ "$out" != "api.txt" ]; then
  # git diff on an untracked path exits 0, which would make the gate pass
  # vacuously — the combination is meaningless, so refuse it.
  echo "apicheck: -check only gates the committed api.txt; drop -out" >&2
  exit 2
fi

go doc -all . > "$out"

if [ "$check" = 1 ]; then
  if ! git diff --exit-code -- "$out"; then
    echo "$out is stale: the public API changed without updating the snapshot." >&2
    echo "Run scripts/apicheck.sh and commit the result." >&2
    exit 1
  fi
fi
